"""Attack-scenario scaffolding: environments, results, classification.

Every attack from Sections 3–4 is an :class:`AttackScenario` that runs
against an :class:`Environment` — a bundle of hardening choices (canary
policy, NX, checked placement, shadow memory, sanitize-on-reuse).  The
unprotected environment reproduces the paper's Ubuntu 10.04 results; the
protected ones populate the attack × defense matrix of experiment E14.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..core.checked import checked_placement_new, checked_placement_new_array
from ..core.placement import placement_new, placement_new_array
from ..core.sanitize import sanitize
from ..cxx.classdef import ClassDef
from ..cxx.object_model import CArrayView, Instance
from ..cxx.types import CType
from ..errors import (
    BoundsCheckViolation,
    NonExecutableMemory,
    OutOfMemory,
    RedZoneViolation,
    SegmentationFault,
    SimulatedProcessError,
    SimulatedTimeout,
    StackSmashingDetected,
)
from ..memory.pool import CheckedMemoryPool, MemoryPool
from ..memory.shadow import ShadowMemory
from ..runtime.canary import CanaryPolicy
from ..runtime.machine import Machine, MachineConfig


@dataclass(frozen=True)
class Environment:
    """One hardening configuration a scenario runs under."""

    label: str = "unprotected"
    machine_config: MachineConfig = field(default_factory=MachineConfig)
    checked_placement: bool = False
    shadow_redzones: bool = False
    sanitize_on_reuse: bool = False
    checked_pools: bool = False
    shadow_return_stack: bool = False
    vtable_integrity: bool = False
    vrt: bool = False
    memory_tagging: bool = False

    # -- machine construction ---------------------------------------------

    def make_machine(self) -> Machine:
        """Build the victim process for this environment."""
        machine = Machine(self.machine_config)
        if self.shadow_redzones:
            shadow = ShadowMemory(machine.space)
            machine.shadow = shadow  # type: ignore[attr-defined]
            shadow.arm()
        if self.shadow_return_stack:
            from ..defenses.shadow_stack import protect_machine as protect_returns

            machine.return_shadow = protect_returns(machine)  # type: ignore[attr-defined]
        if self.vtable_integrity:
            from ..defenses.vtable_integrity import protect_machine as protect_vtables

            machine.vtable_guard = protect_vtables(machine)  # type: ignore[attr-defined]
        if self.vrt:
            from ..defenses.vrt import protect_machine as protect_bounds

            protect_bounds(machine)
        if self.memory_tagging:
            from ..defenses.tagging import protect_machine as protect_tags

            protect_tags(machine)
        return machine

    # -- placement dispatch (the Section 5.1 hook point) -----------------------

    def place(
        self,
        machine: Machine,
        target: Any,
        class_def: ClassDef,
        *args: Any,
        arena_size: Optional[int] = None,
    ) -> Instance:
        """Placement new through this environment's discipline."""
        if self.sanitize_on_reuse:
            self._sanitize_target(machine, target, arena_size)
        if self.checked_placement:
            return checked_placement_new(
                machine, target, class_def, *args, arena_size=arena_size
            )
        return placement_new(machine, target, class_def, *args)

    def place_array(
        self,
        machine: Machine,
        target: Any,
        element: CType,
        count: int,
        arena_size: Optional[int] = None,
    ) -> CArrayView:
        """Array placement through this environment's discipline."""
        if self.sanitize_on_reuse:
            self._sanitize_target(machine, target, arena_size)
        if self.checked_placement:
            return checked_placement_new_array(
                machine, target, element, count, arena_size=arena_size
            )
        return placement_new_array(machine, target, element, count)

    def _sanitize_target(
        self, machine: Machine, target: Any, arena_size: Optional[int]
    ) -> None:
        from ..core.placement import resolve_target

        address, inferred = resolve_target(target)
        size = arena_size if arena_size is not None else inferred
        if size:
            sanitize(machine.space, address, size)

    # -- pools ---------------------------------------------------------------

    def make_pool(
        self, machine: Machine, base: int, capacity: int, name: str = "pool"
    ) -> MemoryPool:
        """A pool under this environment's discipline."""
        cls = CheckedMemoryPool if self.checked_pools else MemoryPool
        return cls(machine.space, base, capacity, name=name)

    # -- shadow --------------------------------------------------------------

    def protect(self, machine: Machine, address: int, size: int) -> None:
        """Register a victim arena with the shadow sanitizer (no-op when
        red zones are disabled)."""
        shadow = getattr(machine, "shadow", None)
        if shadow is not None:
            shadow.disarm()
            shadow.protect_arena(address, size)
            shadow.arm()


# Canonical environments (the E14 matrix columns).

UNPROTECTED = Environment(label="unprotected")

STACKGUARD = Environment(
    label="stackguard",
    machine_config=MachineConfig(
        canary_policy=CanaryPolicy.RANDOM, save_frame_pointer=True
    ),
)

CHECKED_PLACEMENT = Environment(
    label="checked-placement",
    checked_placement=True,
    checked_pools=True,
)

SHADOW_MEMORY = Environment(label="shadow-memory", shadow_redzones=True)

NX_STACK = Environment(
    label="nx",
    machine_config=MachineConfig(nx_stack=True, nx_heap=True),
)

SANITIZE = Environment(label="sanitize-on-reuse", sanitize_on_reuse=True)

SHADOW_RETURN_STACK = Environment(
    label="shadow-return-stack", shadow_return_stack=True
)

VTABLE_INTEGRITY = Environment(label="vtable-integrity", vtable_integrity=True)

VRT_BOUNDS = Environment(label="vrt", vrt=True)

MEMORY_TAGGING = Environment(label="memory-tagging", memory_tagging=True)

ALL_ENVIRONMENTS = (
    UNPROTECTED,
    STACKGUARD,
    CHECKED_PLACEMENT,
    SHADOW_MEMORY,
    NX_STACK,
    SANITIZE,
    SHADOW_RETURN_STACK,
    VTABLE_INTEGRITY,
    VRT_BOUNDS,
    MEMORY_TAGGING,
)


def environment_by_label(label: str) -> Environment:
    """Look an environment up by its ``label`` attribute."""
    for env in ALL_ENVIRONMENTS:
        if env.label == label:
            return env
    choices = ", ".join(env.label for env in ALL_ENVIRONMENTS)
    raise KeyError(f"no environment labelled '{label}' (choose from: {choices})")


def environment_with(base: Environment, **overrides: Any) -> Environment:
    """Derive a variant environment (dataclasses.replace wrapper)."""
    return replace(base, **overrides)


@dataclass
class AttackResult:
    """The outcome of one scenario under one environment."""

    name: str
    paper_ref: str
    environment: str
    succeeded: bool
    detected_by: Optional[str] = None
    crashed: bool = False
    detail: dict = field(default_factory=dict)
    events: tuple = ()

    @property
    def prevented(self) -> bool:
        """True when a defense stopped the attack (detected or crashed
        before reaching its goal)."""
        return not self.succeeded

    def describe(self) -> str:
        """One line for harness tables."""
        if self.succeeded:
            status = "SUCCEEDED"
        elif self.detected_by:
            status = f"DETECTED by {self.detected_by}"
        elif self.crashed:
            status = "CRASHED"
        else:
            status = "PREVENTED"
        return f"{self.name} [{self.environment}]: {status}"


#: Every ``detected_by`` label :func:`classify_failure` can produce.
#: The threat registry's coverage check reads this, so adding a defense
#: exception here without mapping its label there fails the
#: completeness test instead of shipping an unscoreable outcome.
ALL_DETECTION_LABELS = (
    "shadow-return-stack",
    "vtable-integrity",
    "vrt",
    "memory-tagging",
    "stackguard",
    "bounds-check",
    "shadow-memory",
    "nx",
)

#: Mapping from defense-raised exceptions to the defense's name.
_DETECTION_NAMES = (
    (StackSmashingDetected, "stackguard"),
    (BoundsCheckViolation, "bounds-check"),
    (RedZoneViolation, "shadow-memory"),
    (NonExecutableMemory, "nx"),
)


def classify_failure(exc: SimulatedProcessError) -> tuple[Optional[str], bool]:
    """(detected_by, crashed) for an exception that stopped an attack."""
    from ..defenses.shadow_stack import ReturnAddressTampering
    from ..defenses.tagging import TagMismatchFault
    from ..defenses.vrt import VrtBoundsViolation
    from ..defenses.vtable_integrity import VtableIntegrityViolation

    if isinstance(exc, ReturnAddressTampering):
        return "shadow-return-stack", False
    if isinstance(exc, VtableIntegrityViolation):
        return "vtable-integrity", False
    if isinstance(exc, VrtBoundsViolation):
        return "vrt", False
    if isinstance(exc, TagMismatchFault):
        return "memory-tagging", False
    for exc_type, name in _DETECTION_NAMES:
        if isinstance(exc, exc_type):
            return name, False
    if isinstance(exc, (SegmentationFault, OutOfMemory, SimulatedTimeout)):
        return None, True
    return None, True


class AttackScenario(abc.ABC):
    """Base class: one paper attack, runnable under any environment."""

    #: Short identifier used in harness tables.
    name: str = "attack"
    #: Where in the paper this attack appears.
    paper_ref: str = ""
    #: One-line description.
    description: str = ""

    @abc.abstractmethod
    def execute(self, env: Environment) -> AttackResult:
        """Run the attack; implementations may let simulated-process
        errors escape — :meth:`run` classifies them."""

    def run(self, env: Optional[Environment] = None) -> AttackResult:
        """Run under ``env`` (default: unprotected), classifying defenses
        and crashes into the result."""
        active = env or UNPROTECTED
        try:
            return self.execute(active)
        except SimulatedProcessError as exc:
            detected_by, crashed = classify_failure(exc)
            return AttackResult(
                name=self.name,
                paper_ref=self.paper_ref,
                environment=active.label,
                succeeded=False,
                detected_by=detected_by,
                crashed=crashed,
                detail={"error": str(exc)},
            )

    def result(
        self,
        env: Environment,
        succeeded: bool,
        machine: Optional[Machine] = None,
        **detail: Any,
    ) -> AttackResult:
        """Convenience constructor stamping name/ref/environment."""
        return AttackResult(
            name=self.name,
            paper_ref=self.paper_ref,
            environment=env.label,
            succeeded=succeeded,
            detail=detail,
            events=tuple(machine.events) if machine is not None else (),
        )

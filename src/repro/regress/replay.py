"""Deterministic replay of a regression store against the live oracles.

Every bundle is re-run through :func:`repro.fuzz.run_oracles` under its
recorded :class:`~repro.fuzz.OracleConfig` and the outcome is compared
field by field with the recorded expectation.  A replay result is one
of:

``ok``
    Versions match and the oracles reproduced the recorded kind,
    fingerprint, rule set, event set, and (auto-)triage class.
``stale-version``
    The bundle was recorded under different detector / legacy-rule /
    event-vocabulary / triage-rule versions.  Stale is a *failure*, not
    a skip: an intentional version bump must go through ``repro-regress
    rebaseline`` so the corpus explicitly re-asserts its expectations.
``verdict-drift``
    The divergence kind, fingerprint, static rules, or normalized
    dynamic events changed — the exact regression class this store
    exists to catch.
``triage-drift``
    The verdicts still match but the auto-triage classification moved
    (a triaged-benign divergence went un-triaged, or changed class).
``invalid-run``
    The harness can no longer judge the input at all (parse error,
    no runnable entry) although the bundle expected a judged outcome.
``engine-drift``
    Only under an ``engine`` override of ``both``: the recorded verdict
    reproduced, but the bytecode VM's shadow run disagreed with the AST
    interpreter — a simulator-implementation bug, not a corpus change.

Results are ordered by bundle id everywhere, so a replay report is
byte-identical no matter how the work was scheduled — sequentially or
fanned out over any number of service workers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace as dc_replace
from typing import Optional

from ..fuzz.divergence import (
    Divergence,
    auto_triage,
    fingerprint_of,
    normalized_events,
)
from ..fuzz.oracles import run_oracles
from .store import (
    RegressionBundle,
    RegressionStore,
    current_versions,
    triage_label,
)

#: Replay-report schema revision.
REPLAY_SCHEMA = 1


@dataclass
class ReplayResult:
    """The judgment on one replayed bundle."""

    bundle_id: str
    status: str  # ok | stale-version | verdict-drift | triage-drift | invalid-run
    expected: dict = field(default_factory=dict)
    observed: dict = field(default_factory=dict)
    detail: str = ""
    family: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "status": self.status,
            "expected": self.expected,
            "observed": self.observed,
            "detail": self.detail,
            "family": self.family,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReplayResult":
        return cls(
            bundle_id=data["bundle_id"],
            status=data["status"],
            expected=dict(data.get("expected", {})),
            observed=dict(data.get("observed", {})),
            detail=data.get("detail", ""),
            family=data.get("family", ""),
        )


def _expected_view(bundle: RegressionBundle) -> dict:
    return {
        "kind": bundle.expected_kind,
        "fingerprint": bundle.expected_fingerprint,
        "static_rules": list(bundle.expected_rules),
        "dynamic_events": list(bundle.expected_events),
        "triage": triage_label(bundle.triage),
    }


def replay_bundle(
    bundle: RegressionBundle, check_versions: bool = True, engine: str = ""
) -> ReplayResult:
    """Re-run one bundle and judge it against its expectations.

    ``engine`` overrides the execution engine for this replay ("" keeps
    the bundle's recorded config, i.e. the AST interpreter).  The
    override is never part of bundle identity — the same bundle judges
    the same way under any engine unless the engines genuinely disagree,
    which ``both`` reports as ``engine-drift``.
    """
    expected = _expected_view(bundle)
    if check_versions:
        live = current_versions()
        stale = sorted(
            key
            for key in set(live) | set(bundle.versions)
            if live.get(key) != bundle.versions.get(key)
        )
        if stale:
            drifts = ", ".join(
                f"{key}: recorded {bundle.versions.get(key)!r} != "
                f"current {live.get(key)!r}"
                for key in stale
            )
            return ReplayResult(
                bundle_id=bundle.bundle_id,
                status="stale-version",
                expected=expected,
                observed={"versions": live},
                detail=f"recorded under different versions ({drifts}); "
                "run 'repro-regress rebaseline' to re-assert expectations",
                family=bundle.family,
            )

    oracle_config = bundle.oracle_config()
    if engine:
        oracle_config = dc_replace(oracle_config, engine=engine)
    observation = run_oracles(bundle.source, bundle.stdin, oracle_config)
    if not observation.valid:
        observed = {"kind": "invalid", "reason": observation.dynamic.reason}
        if bundle.expected_kind == "invalid":
            return ReplayResult(
                bundle_id=bundle.bundle_id,
                status="ok",
                expected=expected,
                observed=observed,
                family=bundle.family,
            )
        return ReplayResult(
            bundle_id=bundle.bundle_id,
            status="invalid-run",
            expected=expected,
            observed=observed,
            detail=f"harness cannot judge the input anymore: "
            f"{observation.dynamic.reason}",
            family=bundle.family,
        )

    kind = observation.divergence_kind or "agree"
    events = normalized_events(observation.dynamic.events)
    rules = tuple(observation.static.rules)
    fingerprint = (
        fingerprint_of(kind, rules, events)
        if kind in ("static-only", "dynamic-only")
        else ""
    )
    triage = ""
    if kind in ("static-only", "dynamic-only"):
        triage = triage_label(
            auto_triage(
                Divergence(
                    fingerprint=fingerprint,
                    kind=kind,
                    static_rules=rules,
                    dynamic_events=events,
                    family=bundle.family,
                    entry=observation.entry,
                    source=bundle.source,
                    stdin=bundle.stdin,
                )
            ).triage
        )
    observed = {
        "kind": kind,
        "fingerprint": fingerprint,
        "static_rules": list(rules),
        "dynamic_events": list(events),
        "triage": triage,
    }

    mismatches = [
        name
        for name in ("kind", "fingerprint", "static_rules", "dynamic_events")
        if expected[name] != observed[name]
    ]
    if mismatches:
        return ReplayResult(
            bundle_id=bundle.bundle_id,
            status="verdict-drift",
            expected=expected,
            observed=observed,
            detail="changed: " + ", ".join(mismatches),
            family=bundle.family,
        )
    # Manual triage is sticky: a human judgment cannot be recomputed,
    # so with matching verdicts the recorded label stands.
    if expected["triage"] != "manual" and expected["triage"] != observed["triage"]:
        return ReplayResult(
            bundle_id=bundle.bundle_id,
            status="triage-drift",
            expected=expected,
            observed=observed,
            detail=f"auto-triage moved from "
            f"{expected['triage'] or 'open'!r} to "
            f"{observed['triage'] or 'open'!r}",
            family=bundle.family,
        )
    if observation.dynamic.engine_drift:
        return ReplayResult(
            bundle_id=bundle.bundle_id,
            status="engine-drift",
            expected=expected,
            observed=observed,
            detail=f"engines disagreed: {observation.dynamic.engine_drift}",
            family=bundle.family,
        )
    return ReplayResult(
        bundle_id=bundle.bundle_id,
        status="ok",
        expected=expected,
        observed=observed,
        family=bundle.family,
    )


def replay_bundle_json(
    document: str, check_versions: bool = True, engine: str = ""
) -> dict:
    """Worker-friendly wrapper: canonical bundle JSON in, result dict out."""
    try:
        bundle = RegressionBundle.from_json(document)
    except (ValueError, KeyError) as error:
        data = {}
        try:
            data = json.loads(document)
        except ValueError:
            pass
        return ReplayResult(
            bundle_id=str(data.get("id", "?")) if isinstance(data, dict) else "?",
            status="invalid-run",
            detail=f"unreadable bundle: {error}",
        ).to_dict()
    return replay_bundle(
        bundle, check_versions=check_versions, engine=engine
    ).to_dict()


@dataclass
class DriftReport:
    """Aggregated replay outcome over one store."""

    results: list = field(default_factory=list)
    versions: dict = field(default_factory=current_versions)

    @property
    def drifted(self) -> list:
        return [result for result in self.results if not result.ok]

    @property
    def clean(self) -> bool:
        return not self.drifted

    def sorted_results(self) -> list:
        return sorted(self.results, key=lambda r: r.bundle_id)

    def counts(self) -> dict:
        tally: dict = {}
        for result in self.results:
            tally[result.status] = tally.get(result.status, 0) + 1
        return dict(sorted(tally.items()))

    def to_dict(self) -> dict:
        return {
            "schema": REPLAY_SCHEMA,
            "versions": dict(sorted(self.versions.items())),
            "bundles": len(self.results),
            "counts": self.counts(),
            "clean": self.clean,
            "results": [result.to_dict() for result in self.sorted_results()],
        }

    def to_json(self) -> str:
        """Canonical byte-stable encoding (the CI drift artifact)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        counts = self.counts()
        lines = [
            f"replayed {len(self.results)} bundle(s): "
            + (
                ", ".join(f"{count} {status}" for status, count in counts.items())
                or "store is empty"
            )
        ]
        for result in self.sorted_results():
            if result.ok:
                continue
            lines.append(
                f"  [{result.status}] {result.bundle_id}"
                + (f" (family {result.family})" if result.family else "")
            )
            if result.detail:
                lines.append(f"      {result.detail}")
        if self.clean and self.results:
            lines.append("no drift: every recorded verdict reproduced")
        return "\n".join(lines)


def replay_store(
    store: RegressionStore,
    check_versions: bool = True,
    bundle_ids: Optional[list] = None,
    engine: str = "",
) -> DriftReport:
    """Sequentially replay a store (or a subset of its bundle ids)."""
    report = DriftReport()
    for bundle_id in bundle_ids if bundle_ids is not None else store.ids():
        report.results.append(
            replay_bundle(
                store.load(bundle_id),
                check_versions=check_versions,
                engine=engine,
            )
        )
    return report


def rebaseline_store(
    store: RegressionStore, bundle_ids: Optional[list] = None
) -> dict:
    """Re-run every bundle and rewrite its expectations and versions.

    Returns ``{"updated": [...], "unchanged": [...], "failed": {id:
    reason}}``.  A bundle whose run the harness can no longer judge is
    *failed*, never silently rewritten — delete it or fix the harness.
    """
    from .store import bundle_from_observation

    updated: list = []
    unchanged: list = []
    failed: dict = {}
    for bundle_id in bundle_ids if bundle_ids is not None else store.ids():
        bundle = store.load(bundle_id)
        observation = run_oracles(
            bundle.source, bundle.stdin, bundle.oracle_config()
        )
        if not observation.valid and bundle.expected_kind != "invalid":
            failed[bundle_id] = (
                f"harness cannot judge the input: {observation.dynamic.reason}"
            )
            continue
        triage = bundle.triage
        if observation.valid and observation.divergence_kind is not None:
            fresh = auto_triage(
                Divergence(
                    fingerprint="",
                    kind=observation.divergence_kind,
                    static_rules=tuple(observation.static.rules),
                    dynamic_events=normalized_events(
                        observation.dynamic.events
                    ),
                    family=bundle.family,
                    entry=observation.entry,
                    source=bundle.source,
                    stdin=bundle.stdin,
                )
            ).triage
            # manual notes survive a rebaseline; auto labels refresh
            if not triage_label(bundle.triage) == "manual":
                triage = fresh
        rebased = bundle_from_observation(
            bundle.source,
            bundle.stdin,
            bundle.oracle_config(),
            observation,
            triage=triage,
            meta=bundle.meta,
        )
        rebased.family = bundle.family
        _, disposition = store.record(rebased, overwrite=True)
        (unchanged if disposition == "unchanged" else updated).append(bundle_id)
    return {"updated": updated, "unchanged": unchanged, "failed": failed}

"""The bytecode VM: threaded dispatch over the compiled IR.

:class:`BytecodeVM` subclasses the AST interpreter so setup (globals
installation, symbol/layout sharing), coercions, stores and the whole
construction/placement machinery are literally the same code — the VM
replaces only the execution core: a flat loop indexing an opcode→bound-
method table instead of per-node recursive ``eval``.

Typed loads and stores go through :meth:`AddressSpace.locate`, the
zero-hook vectorized path: when the access lands inside one segment
with the right permission and no observer is registered, the value is
(un)packed straight from the segment's memoryview.  Any other case —
hooks attached (every fuzz oracle attaches one), permission violations,
segment-straddling ranges — falls back to ``AddressSpace.read/write``,
which raises the precise fault and fires the exact events the
interpreter would.

The module also owns the compiled-program cache used by the fuzzing
stack: keyed by source hash + :data:`BYTECODE_VERSION`, with
compilation-failure sentinels so a program that cannot be compiled
(``fallbacks``) or crashes the compiler (``compile_errors``) is decided
once and the caller transparently reruns it on the interpreter.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

from ..analysis.parser import ParseError, parse
from ..cxx.object_model import Instance
from ..cxx.types import (
    BOOL,
    CHAR,
    CHAR_PTR,
    DOUBLE,
    FLOAT,
    FUNC_PTR,
    INT,
    SHORT,
    UINT,
    VOID_PTR,
    ArrayType,
    array_of,
)
from ..errors import ApiMisuseError, SimulatedTimeout
from ..memory.tracker import ArenaOrigin
from ..runtime.machine import Machine
from . import bytecode as bc
from .bytecode import BYTECODE_VERSION, CompiledProgram, UnsupportedConstruct, compile_program
from .interpreter import (
    DEFAULT_STEP_BUDGET,
    FunctionOutcome,
    Interpreter,
    _atoi,
    _SCALAR_CTYPES,
    run_source,
)
from .values import LValue, Scope, Variable, truthy

__all__ = [
    "BYTECODE_VERSION",
    "BytecodeVM",
    "UnsupportedConstruct",
    "cache_stats",
    "compile_source",
    "compiled_for",
    "reset_cache",
    "run_source_bytecode",
    "source_digest",
]

_I16 = struct.Struct("<h").unpack_from
_I32 = struct.Struct("<i").unpack_from
_U32 = struct.Struct("<I").unpack_from
_F32 = struct.Struct("<f").unpack_from
_F64 = struct.Struct("<d").unpack_from

#: ctype identity -> (width, unpacker) for the vectorized load path.
#: Keyed by id() because the canonical scalars are module singletons;
#: any non-canonical ctype simply misses and takes the slow path.
_FAST_READERS = {
    id(INT): (4, lambda view, off: _I32(view, off)[0]),
    id(UINT): (4, lambda view, off: _U32(view, off)[0]),
    id(SHORT): (2, lambda view, off: _I16(view, off)[0]),
    id(CHAR): (1, lambda view, off: chr(view[off])),
    id(BOOL): (1, lambda view, off: view[off] != 0),
    id(FLOAT): (4, lambda view, off: _F32(view, off)[0]),
    id(DOUBLE): (8, lambda view, off: _F64(view, off)[0]),
    id(VOID_PTR): (4, lambda view, off: _U32(view, off)[0]),
    id(CHAR_PTR): (4, lambda view, off: _U32(view, off)[0]),
    id(FUNC_PTR): (4, lambda view, off: _U32(view, off)[0]),
}


class BytecodeVM(Interpreter):
    """Executes one compiled program on one machine.

    The interpreter remains available on the same instance (inherited
    ``eval``/``_exec``); global initializers run through it so their
    ticks and side effects are identical by construction.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        machine: Optional[Machine] = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
    ) -> None:
        self.compiled = compiled
        self.program = compiled.program
        self.machine = machine or Machine()
        # Reuse the compiling symbol table: vtable and layout identity
        # must match what the compiler baked into the instructions.
        self.symbols = compiled.symbols
        self.machine.layouts = self.symbols.layout_engine()
        self.step_budget = step_budget
        self.steps = 0
        self.outputs: list = []
        self.stored: list = []
        self.globals = Scope()
        self._global_counter = 0
        self._operands: list = []
        self._ret: Any = None
        self.scope = self.globals
        self._frame = None
        self._handlers = self._bind_handlers()
        self._install_globals()

    # -- dispatch ---------------------------------------------------------

    def _bind_handlers(self) -> list:
        table: list = [None] * bc.N_OPS
        for opcode, name in _HANDLERS:
            table[opcode] = getattr(self, name)
        return table

    def _execute(self, code: list) -> Any:
        handlers = self._handlers
        budget = self.step_budget
        ip = 0
        size = len(code)
        while ip < size:
            op, arg, ticks = code[ip]
            if ticks:
                steps = self.steps + ticks
                if steps > budget:
                    # The interpreter raises on the first over-budget
                    # tick, leaving steps at exactly budget+1.
                    self.steps = budget + 1
                    raise SimulatedTimeout(budget)
                self.steps = steps
            jump = handlers[op](arg)
            if jump is None:
                ip += 1
            elif jump == -1:
                return self._ret
            else:
                ip = jump
        return None

    # -- public API -------------------------------------------------------

    def run(self, function_name: str, *args: Any) -> FunctionOutcome:
        index = self.compiled.function_index.get(function_name)
        if index is None:
            raise KeyError(f"no function '{function_name}'")
        prepared: list = []
        for value in args:
            if isinstance(value, str):
                address = self.machine.heap.allocate(len(value) + 1)
                self.machine.space.write_c_string(address, value)
                prepared.append(address)
            else:
                prepared.append(value)
        function = self.compiled.function_list[index]
        steps_before = self.steps
        return_value, frame_exit = self._call_compiled(function, prepared)
        return FunctionOutcome(
            return_value=return_value,
            frame_exit=frame_exit,
            outputs=self.outputs,
            stored=self.stored,
            steps=self.steps - steps_before,
        )

    # -- call machinery ---------------------------------------------------

    def _call_compiled(self, function, args: list) -> Tuple[Any, Any]:
        scope = self.globals.child()
        caller_sp = self.machine.stack.stack_pointer
        space = self.machine.space
        for (name, type_ref, ctype, pointee), value in zip(function.params, args):
            address = self.machine.stack.push_region(max(ctype.size, 4), alignment=4)
            space.write(address, ctype.encode(value))
            scope.declare(
                Variable(
                    name=name,
                    address=address,
                    type_ref=type_ref,
                    ctype=ctype,
                    pointee_class=pointee,
                    size=ctype.size,
                )
            )
        frame = self.machine.push_frame(function.frame_label)
        saved_scope, saved_frame = self.scope, self._frame
        self.scope, self._frame = scope, frame
        return_value = self._execute(function.code)
        self.scope, self._frame = saved_scope, saved_frame
        frame_exit = self.machine.pop_frame(frame)
        self.machine.stack.pop_to(caller_sp)  # cdecl: caller cleans args
        return return_value, frame_exit

    def _call_method(self, method, address: int, args: list) -> Any:
        if method.field_slots is None:
            raise ApiMisuseError(f"unknown class '{method.class_name}'")
        scope = self.globals.child()
        for name, offset, type_ref, ctype, member_class, size in method.field_slots:
            scope.declare(
                Variable(
                    name=name,
                    address=address + offset,
                    type_ref=type_ref,
                    ctype=ctype,
                    class_def=member_class,
                    size=size,
                )
            )
        frame = self.machine.push_frame(method.frame_label)
        space = self.machine.space
        for (name, type_ref, ctype, pointee), value in zip(method.params, args):
            param_address = frame.local_scalar(ctype, self._unique(f"param:{name}"))
            space.write(param_address, ctype.encode(value))
            scope.declare(
                Variable(
                    name=name,
                    address=param_address,
                    type_ref=type_ref,
                    ctype=ctype,
                    pointee_class=pointee,
                    size=ctype.size,
                )
            )
        saved_scope, saved_frame = self.scope, self._frame
        self.scope, self._frame = scope, frame
        return_value = self._execute(method.code)
        self.scope, self._frame = saved_scope, saved_frame
        self.machine.pop_frame(frame)
        return return_value

    # -- typed memory fast paths ------------------------------------------

    def _fast_read(self, address: int, ctype) -> Any:
        entry = _FAST_READERS.get(id(ctype))
        if entry is not None:
            located = self.machine.space.locate(address, entry[0])
            if located is not None:
                return entry[1](located[0], located[1])
        data = self.machine.space.read(address, ctype.size)
        return ctype.decode(data)

    def _store(self, lvalue: LValue, value: Any) -> None:
        # Same contract as Interpreter._store; the vectorized path only
        # engages when the write is hook-free, in-bounds and permitted —
        # everything else goes through space.write for the precise fault.
        ctype = lvalue.require_scalar()
        data = ctype.encode(self._coerce(ctype, value))
        space = self.machine.space
        located = space.locate(lvalue.address, len(data), writable=True)
        if located is not None:
            view, offset = located
            view[offset : offset + len(data)] = data
        else:
            space.write(lvalue.address, data)

    def _pop_args(self, argc: int) -> list:
        if not argc:
            return []
        operands = self._operands
        args = operands[-argc:]
        del operands[-argc:]
        return args

    # -- opcode handlers --------------------------------------------------

    def _op_push(self, arg):
        self._operands.append(arg)

    def _op_pop(self, arg):
        self._operands.pop()

    def _op_tick(self, arg):
        pass

    def _op_load_name(self, ident):
        variable = self.scope.lookup(ident)
        if variable is None:
            raise ApiMisuseError(f"undefined variable '{ident}'")
        if variable.class_def is not None:
            self._operands.append(variable.address)
            return
        if isinstance(variable.ctype, ArrayType):
            self._operands.append(variable.address)  # decay
            return
        self._operands.append(self._fast_read(variable.address, variable.ctype))

    def _op_lval_name(self, ident):
        variable = self.scope.lookup(ident)
        if variable is None:
            raise ApiMisuseError(f"undefined variable '{ident}'")
        self._operands.append(
            LValue(
                address=variable.address,
                ctype=variable.ctype,
                class_def=variable.class_def,
                declared=variable.type_ref,
            )
        )

    def _member_lvalue(self, base_address, class_def, name):
        if class_def is None:
            raise ApiMisuseError(f"member '{name}' on unknown class")
        layout = self.machine.layouts.layout_of(class_def)
        slot = layout.slot(name)
        member_class = getattr(slot.ctype, "class_def", None)
        if member_class is not None:
            return LValue(address=base_address + slot.offset, class_def=member_class)
        return LValue(address=base_address + slot.offset, ctype=slot.ctype)

    def _op_lval_member_dot(self, name):
        base = self._operands.pop()
        self._operands.append(self._member_lvalue(base.address, base.class_def, name))

    def _op_lval_member_arrow(self, arg):
        name, pointee_ident = arg
        base_address = self._expect_int(self._operands.pop())
        class_def = None
        if pointee_ident is not None:
            variable = self.scope.lookup(pointee_ident)
            if variable is not None:
                class_def = variable.pointee_class
        self._operands.append(self._member_lvalue(base_address, class_def, name))

    def _op_lval_index(self, arg):
        index = self._expect_int(self._operands.pop())
        base = self._operands.pop()
        if base.ctype is not None and isinstance(base.ctype, ArrayType):
            element = base.ctype.element
            self._operands.append(
                LValue(address=base.address + index * element.size, ctype=element)
            )
            return
        if base.declared is not None and base.declared.is_pointer:
            element = _SCALAR_CTYPES.get(base.declared.name) or CHAR
            pointer = self.machine.space.read_pointer(base.address)
            self._operands.append(
                LValue(address=pointer + index * element.size, ctype=element)
            )
            return
        raise ApiMisuseError("cannot index a non-array location")

    def _op_lval_deref(self, arg):
        target = self._expect_int(self._operands.pop())
        self._operands.append(LValue(address=target, ctype=INT))

    def _op_lval_load(self, arg):
        lvalue = self._operands.pop()
        ctype = lvalue.ctype
        if ctype is None:
            self._operands.append(lvalue.address)  # object member: its address
        elif isinstance(ctype, ArrayType):
            self._operands.append(lvalue.address)  # arrays decay
        else:
            self._operands.append(self._fast_read(lvalue.address, ctype))

    def _op_addr_of(self, arg):
        self._operands.append(self._operands.pop().address)

    def _op_store(self, arg):
        lvalue = self._operands.pop()
        value = self._operands.pop()
        self._store(lvalue, value)

    def _op_incdec(self, op):
        lvalue = self._operands.pop()
        ctype = lvalue.require_scalar()
        current = self._fast_read(lvalue.address, ctype)
        delta = 1 if "++" in op else -1
        updated = current + delta
        self._store(lvalue, updated)
        self._operands.append(current if op.startswith("post") else updated)

    def _op_jump(self, target):
        return target

    def _op_jump_if_false(self, target):
        if not truthy(self._operands.pop()):
            return target
        return None

    def _op_ret(self, has_value):
        self._ret = self._operands.pop() if has_value else None
        return -1

    # arithmetic / comparison

    def _op_add(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = operands[-1] + right

    def _op_sub(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = operands[-1] - right

    def _op_mul(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = operands[-1] * right

    def _op_div(self, arg):
        operands = self._operands
        right = operands.pop()
        left = operands[-1]
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise ApiMisuseError("integer division by zero")
            operands[-1] = int(left / right) if (left < 0) != (right < 0) else left // right
        else:
            operands[-1] = left / right

    def _op_mod(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = operands[-1] % right

    def _op_lt(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = int(operands[-1] < right)

    def _op_gt(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = int(operands[-1] > right)

    def _op_le(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = int(operands[-1] <= right)

    def _op_ge(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = int(operands[-1] >= right)

    def _op_eq(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = int(operands[-1] == right)

    def _op_ne(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = int(operands[-1] != right)

    def _op_and(self, arg):
        # Eager like the interpreter: both operands already evaluated.
        operands = self._operands
        right = operands.pop()
        operands[-1] = int(truthy(operands[-1]) and truthy(right))

    def _op_or(self, arg):
        operands = self._operands
        right = operands.pop()
        operands[-1] = int(truthy(operands[-1]) or truthy(right))

    def _op_neg(self, arg):
        operands = self._operands
        operands[-1] = -operands[-1]

    def _op_not(self, arg):
        operands = self._operands
        operands[-1] = int(not truthy(operands[-1]))

    def _op_inv(self, arg):
        operands = self._operands
        operands[-1] = ~self._expect_int(operands[-1])

    def _op_deref_read(self, arg):
        address = self._expect_int(self._operands.pop())
        self._operands.append(self.machine.space.read_int(address))

    def _op_expect_int(self, arg):
        operands = self._operands
        operands[-1] = self._expect_int(operands[-1])

    # scopes and declarations

    def _op_scope_push(self, arg):
        self.scope = self.scope.child()

    def _op_scope_pop(self, arg):
        self.scope = self.scope._parent

    def _op_decl_scalar(self, arg):
        ctype, name, type_ref, has_init, pointee = arg
        init = self._operands.pop() if has_init else None
        if init is not None:
            init = self._coerce(ctype, init)
        address = self._frame.local_scalar(ctype, self._unique(name), init=init)
        self.scope.declare(
            Variable(
                name=name,
                address=address,
                type_ref=type_ref,
                ctype=ctype,
                pointee_class=pointee,
                size=ctype.size,
            )
        )

    def _op_decl_array(self, arg):
        element, name, type_ref = arg
        count = self._expect_int(self._operands.pop())
        view = self._frame.local_array(element, count, self._unique(name))
        self.scope.declare(
            Variable(
                name=name,
                address=view.address,
                type_ref=type_ref,
                ctype=array_of(element, count),
                size=element.size * count,
            )
        )

    def _op_decl_object(self, arg):
        class_def, name, type_ref = arg
        instance = self._frame.local_object(class_def, self._unique(name))
        self.scope.declare(
            Variable(
                name=name,
                address=instance.address,
                type_ref=type_ref,
                class_def=class_def,
                size=instance.size,
            )
        )

    def _op_obj_construct(self, arg):
        class_def, name, argc = arg
        args = self._pop_args(argc)
        variable = self.scope.lookup(name)
        self._construct(class_def, variable.address, args)

    def _op_obj_copy(self, name):
        source = self._operands.pop()
        if isinstance(source, int):
            variable = self.scope.lookup(name)
            data = self.machine.space.read(source, variable.size)
            self.machine.space.write(variable.address, data)

    # statements

    def _op_cin_read(self, arg):
        lvalue = self._operands.pop()
        ctype = lvalue.require_scalar()
        if isinstance(ctype, (type(DOUBLE), type(FLOAT))) and ctype in (DOUBLE, FLOAT):
            token: Any = self.machine.stdin.read_double()
        else:
            token = self.machine.stdin.read_int()
        self._store(lvalue, token)

    def _op_cout(self, arg):
        self.outputs.append(self._operands.pop())

    def _op_delete(self, arg):
        address = self._operands.pop()
        if address:
            self.machine.tracker.mark_freed(address)
            self.machine.heap.free(address)

    def _op_raise(self, arg):
        exc_class, message = arg
        raise exc_class(message)

    # calls

    def _op_call(self, arg):
        index, argc = arg
        args = self._pop_args(argc)
        value, _ = self._call_compiled(self.compiled.function_list[index], args)
        self._operands.append(value)

    def _op_recv_name(self, arg):
        ident, func = arg
        variable = self.scope.lookup(ident)
        if variable is not None:
            if variable.class_def is not None:
                self._operands.append((variable.address, variable.class_def.name))
                return
            if variable.pointee_class is not None:
                address = self.machine.space.read_pointer(variable.address)
                self._operands.append((address, variable.pointee_class.name))
                return
        # General case: the interpreter evaluates the name (one tick),
        # coerces it to an address, and then fails to type the receiver.
        self._tick()
        if variable is None:
            raise ApiMisuseError(f"undefined variable '{ident}'")
        if isinstance(variable.ctype, ArrayType):
            value: Any = variable.address
        else:
            value = self._fast_read(variable.address, variable.ctype)
        self._expect_int(value)
        raise ApiMisuseError(f"cannot type method receiver for '{func}'")

    def _op_recv_value(self, func):
        self._expect_int(self._operands.pop())
        raise ApiMisuseError(f"cannot type method receiver for '{func}'")

    def _op_method_call(self, arg):
        func, argc = arg
        args = self._pop_args(argc)
        address, class_name = self._operands.pop()
        method = self.compiled.methods.get((class_name, func))
        if method is not None:
            self._operands.append(self._call_method(method, address, args))
            return
        lowered = self._class_for(class_name)
        if lowered is not None and func in lowered.virtual_slot_order():
            instance = Instance(self.machine, lowered, address)
            result = self.machine.virtual_call(instance, func, *args)
            self._operands.append(result.return_value)
            return
        raise ApiMisuseError(f"class {class_name} has no method '{func}'")

    # builtins

    def _op_noop_call(self, arg):
        argc, event = arg
        if argc:
            del self._operands[-argc:]
        self.machine.record_event(event)
        self._operands.append(0)

    def _op_strncpy(self, arg):
        operands = self._operands
        count = operands.pop()
        source = operands.pop()
        dest = operands.pop()
        text = source if isinstance(source, str) else self.machine.space.read_c_string(source)
        self.machine.space.strncpy(dest, text, count)
        operands.append(dest)

    def _op_strcpy(self, arg):
        operands = self._operands
        source = operands.pop()
        dest = operands.pop()
        text = source if isinstance(source, str) else self.machine.space.read_c_string(source)
        self.machine.space.write_c_string(dest, text)  # unbounded!
        operands.append(dest)

    def _op_memset(self, arg):
        operands = self._operands
        count = operands.pop()
        byte = operands.pop() & 0xFF
        dest = operands.pop()
        self.machine.space.fill(dest, count, byte)
        operands.append(dest)

    def _op_readfile(self, arg):
        operands = self._operands
        count = operands.pop()
        dest = operands.pop()
        path = operands.pop()
        if isinstance(path, int):
            path = self.machine.space.read_c_string(path)
        data = self.machine.files.open(path).read(count)
        self.machine.space.write(dest, data.ljust(count, b"\x00")[:count])
        operands.append(len(data))

    def _op_store_bytes(self, arg):
        address = self._operands.pop()
        record = self.machine.tracker.lookup(address)
        length = record.true_size if record is not None else 256
        segment = self.machine.space.find_segment(address)
        if segment is not None:
            length = min(length, segment.end - address)
        data = self.machine.space.read(address, max(length, 0))
        self.stored.append((address, data))
        self.machine.record_event(f"store({address:#010x}, {len(data)}B)")
        self._operands.append(len(data))

    def _op_invoke_ptr(self, arg):
        target = self._operands.pop()
        result = self.machine.call_function_pointer(target)
        self._operands.append(result.return_value)

    def _op_getenv(self, argc):
        if argc:
            del self._operands[-argc:]
        token = self.machine.stdin.read_int()
        self.machine.record_event("getenv()")
        self._operands.append(str(token))

    def _op_atoi(self, arg):
        source = self._operands.pop()
        text = (
            source
            if isinstance(source, str)
            else self.machine.space.read_c_string(self._expect_int(source))
        )
        self._operands.append(_atoi(text))

    def _op_make_tuple(self, argc):
        self._operands.append(tuple(self._pop_args(argc)))

    def _op_sizeof_name(self, ident):
        variable = self.scope.lookup(ident)
        if variable is not None and variable.size:
            self._operands.append(variable.size)
            return
        raise ApiMisuseError("unsupported sizeof operand")

    # new expressions

    def _arena_extent(self, hint: Optional[str], address: int) -> Optional[int]:
        record = self.machine.tracker.lookup(address)
        if record is not None:
            return record.true_size
        if hint is not None:
            variable = self.scope.lookup(hint)
            if (
                variable is not None
                and variable.size
                and variable.address == address
                and not variable.type_ref.is_pointer
            ):
                return variable.size
        return None

    def _op_heap_new_array(self, arg):
        type_name, element, argc = arg
        count = self._operands.pop()
        if argc:
            del self._operands[-argc:]
        size = element.size * count
        address = self.machine.heap.allocate(size)
        self.machine.tracker.record(
            address, size, ArenaOrigin.HEAP_NEW, label=f"{type_name}[{count}]"
        )
        self._operands.append(address)

    def _op_heap_new_class(self, arg):
        class_def, argc = arg
        args = self._pop_args(argc)
        layout = self.machine.layouts.layout_of(class_def)
        address = self.machine.heap.allocate(layout.size)
        self.machine.tracker.record(
            address, layout.size, ArenaOrigin.HEAP_NEW, label=class_def.name
        )
        self._construct(class_def, address, args)
        self._operands.append(address)

    def _op_heap_new_scalar(self, arg):
        type_name, element, argc = arg
        args = self._pop_args(argc)
        address = self.machine.heap.allocate(element.size)
        self.machine.tracker.record(
            address, element.size, ArenaOrigin.HEAP_NEW, label=type_name
        )
        if args:
            self.machine.space.write(address, element.encode(args[0]))
        self._operands.append(address)

    def _op_place_new_array(self, arg):
        type_name, element, argc, hint = arg
        count = self._operands.pop()
        address = self._operands.pop()
        if argc:
            del self._operands[-argc:]
        arena_size = self._arena_extent(hint, address)
        size = (element.size if element else 1) * count
        label = f"{type_name}[{count}]"
        self.machine.tracker.relabel(address, size, label=label)
        self.machine.placement_log.add(
            self._placement_record(address, size, label, arena_size)
        )
        self._operands.append(address)

    def _op_place_new_class(self, arg):
        class_def, argc, hint = arg
        address = self._operands.pop()
        args = self._pop_args(argc)
        arena_size = self._arena_extent(hint, address)
        layout = self.machine.layouts.layout_of(class_def)
        self.machine.tracker.relabel(address, layout.size, label=class_def.name)
        self.machine.placement_log.add(
            self._placement_record(address, layout.size, class_def.name, arena_size)
        )
        self._construct(class_def, address, args)
        self._operands.append(address)


_HANDLERS = (
    (bc.PUSH, "_op_push"),
    (bc.POP, "_op_pop"),
    (bc.TICK, "_op_tick"),
    (bc.LOAD_NAME, "_op_load_name"),
    (bc.LVAL_NAME, "_op_lval_name"),
    (bc.LVAL_MEMBER_DOT, "_op_lval_member_dot"),
    (bc.LVAL_MEMBER_ARROW, "_op_lval_member_arrow"),
    (bc.LVAL_INDEX, "_op_lval_index"),
    (bc.LVAL_DEREF, "_op_lval_deref"),
    (bc.LVAL_LOAD, "_op_lval_load"),
    (bc.ADDR_OF, "_op_addr_of"),
    (bc.STORE, "_op_store"),
    (bc.INCDEC, "_op_incdec"),
    (bc.JUMP, "_op_jump"),
    (bc.JUMP_IF_FALSE, "_op_jump_if_false"),
    (bc.RET, "_op_ret"),
    (bc.ADD, "_op_add"),
    (bc.SUB, "_op_sub"),
    (bc.MUL, "_op_mul"),
    (bc.DIV, "_op_div"),
    (bc.MOD, "_op_mod"),
    (bc.LT, "_op_lt"),
    (bc.GT, "_op_gt"),
    (bc.LE, "_op_le"),
    (bc.GE, "_op_ge"),
    (bc.EQ, "_op_eq"),
    (bc.NE, "_op_ne"),
    (bc.AND_, "_op_and"),
    (bc.OR_, "_op_or"),
    (bc.NEG, "_op_neg"),
    (bc.NOT_, "_op_not"),
    (bc.INV, "_op_inv"),
    (bc.DEREF_READ, "_op_deref_read"),
    (bc.EXPECT_INT, "_op_expect_int"),
    (bc.SCOPE_PUSH, "_op_scope_push"),
    (bc.SCOPE_POP, "_op_scope_pop"),
    (bc.DECL_SCALAR, "_op_decl_scalar"),
    (bc.DECL_ARRAY, "_op_decl_array"),
    (bc.DECL_OBJECT, "_op_decl_object"),
    (bc.OBJ_CONSTRUCT, "_op_obj_construct"),
    (bc.OBJ_COPY, "_op_obj_copy"),
    (bc.CIN_READ, "_op_cin_read"),
    (bc.COUT, "_op_cout"),
    (bc.DELETE, "_op_delete"),
    (bc.RAISE, "_op_raise"),
    (bc.CALL, "_op_call"),
    (bc.RECV_NAME, "_op_recv_name"),
    (bc.RECV_VALUE, "_op_recv_value"),
    (bc.METHOD_CALL, "_op_method_call"),
    (bc.NOOP_CALL, "_op_noop_call"),
    (bc.STRNCPY, "_op_strncpy"),
    (bc.STRCPY, "_op_strcpy"),
    (bc.MEMSET, "_op_memset"),
    (bc.READFILE, "_op_readfile"),
    (bc.STORE_BYTES, "_op_store_bytes"),
    (bc.INVOKE_PTR, "_op_invoke_ptr"),
    (bc.GETENV, "_op_getenv"),
    (bc.ATOI, "_op_atoi"),
    (bc.MAKE_TUPLE, "_op_make_tuple"),
    (bc.SIZEOF_NAME, "_op_sizeof_name"),
    (bc.HEAP_NEW_ARRAY, "_op_heap_new_array"),
    (bc.HEAP_NEW_CLASS, "_op_heap_new_class"),
    (bc.HEAP_NEW_SCALAR, "_op_heap_new_scalar"),
    (bc.PLACE_NEW_ARRAY, "_op_place_new_array"),
    (bc.PLACE_NEW_CLASS, "_op_place_new_class"),
)

assert len(_HANDLERS) == bc.N_OPS


# --------------------------------------------------------------------------
# compiled-program cache


def source_digest(source: str) -> str:
    """The content hash compiled programs are cached under."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


_CACHE_CAPACITY = 256
_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_cache_lock = threading.Lock()
_stats = {
    "compiles": 0,
    "cache_hits": 0,
    "cache_misses": 0,
    "fallbacks": 0,
    "compile_errors": 0,
}


def compile_source(source: str) -> CompiledProgram:
    """Parse and compile, uncached (raises on any failure)."""
    return compile_program(parse(source))


def compiled_for(source: str) -> Tuple[Optional[CompiledProgram], str]:
    """Fetch or build the compiled program for ``source``.

    Returns ``(compiled, note)``.  ``compiled`` is None when the program
    must run on the interpreter instead; ``note`` says why — empty (a
    parse error the interpreter will reproduce verbatim),
    ``fallback:unsupported``, or ``compile-error:<hash12>`` for an
    unexpected compiler crash.  Failures are cached too, so the
    decision is made once per source.
    """
    key = (source_digest(source), BYTECODE_VERSION)
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            _stats["cache_hits"] += 1
            return cached
        _stats["cache_misses"] += 1
    try:
        entry: Tuple[Optional[CompiledProgram], str] = (compile_source(source), "")
        with _cache_lock:
            _stats["compiles"] += 1
    except ParseError:
        # The interpreter's own parse raises the identical error, so
        # the fallback run reproduces the exact invalid verdict.
        entry = (None, "")
    except UnsupportedConstruct:
        entry = (None, "fallback:unsupported")
        with _cache_lock:
            _stats["fallbacks"] += 1
    except Exception:
        # A compiler bug or resource blow-up (e.g. RecursionError on a
        # pathologically deep mutant): record it, run on the
        # interpreter, and surface the failing source hash upstream.
        entry = (None, f"compile-error:{key[0][:12]}")
        with _cache_lock:
            _stats["compile_errors"] += 1
    with _cache_lock:
        _cache[key] = entry
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_CAPACITY:
            _cache.popitem(last=False)
    return entry


def cache_stats() -> dict:
    """Counters for the metrics surfaces (JSON and Prometheus)."""
    with _cache_lock:
        snapshot = dict(_stats)
        snapshot["cache_size"] = len(_cache)
        snapshot["version"] = BYTECODE_VERSION
    return snapshot


def reset_cache() -> None:
    """Clear the cache and counters (tests and benchmarks)."""
    with _cache_lock:
        _cache.clear()
        for counter in _stats:
            _stats[counter] = 0


def run_source_bytecode(
    source: str,
    entry: str = "main",
    args: tuple = (0, 0),
    machine: Optional[Machine] = None,
    stdin: tuple = (),
    step_budget: int = DEFAULT_STEP_BUDGET,
) -> Tuple[Any, FunctionOutcome, str]:
    """Like :func:`run_source` but on the bytecode engine, with a
    transparent interpreter fallback.

    Returns ``(executor, outcome, engine)`` where ``engine`` is the
    engine that actually ran — ``"bytecode"`` or ``"ast"``.
    """
    compiled, _note = compiled_for(source)
    if compiled is None:
        interpreter, outcome = run_source(
            source, entry=entry, args=args, machine=machine, stdin=stdin,
            step_budget=step_budget,
        )
        return interpreter, outcome, "ast"
    vm = BytecodeVM(compiled, machine=machine, step_budget=step_budget)
    if stdin:
        vm.machine.stdin.feed(*stdin)
    outcome = vm.run(entry, *args)
    return vm, outcome, "bytecode"

"""Workload definitions: the paper's example classes and generators
used by the benchmark harnesses."""

from .classes import (
    make_mobile_player,
    make_someclass,
    make_student_classes,
    set_ssn,
)
from .generators import (
    DetectorScore,
    GeneratedProgram,
    generate_corpus,
    generate_program,
    score_detector,
)

__all__ = [
    "DetectorScore",
    "GeneratedProgram",
    "generate_corpus",
    "generate_program",
    "make_mobile_player",
    "make_someclass",
    "make_student_classes",
    "score_detector",
    "set_ssn",
]

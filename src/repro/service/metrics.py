"""Service metrics: counters, gauges, and histograms with a JSON snapshot.

A deliberately small, stdlib-only metrics surface in the shape of the
usual exporters: monotonically increasing counters, last-value gauges,
and summary histograms (count/total/min/max/mean).  Everything is
thread-safe and renders to a deterministic, sorted JSON document served
by the ``/metrics`` endpoint — or, via :func:`render_prometheus`, to
the Prometheus text exposition format for scrapers
(``GET /metrics?format=prom``).
"""

from __future__ import annotations

import json
import threading
from typing import Optional


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, workers busy)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """Summary statistics over observed values (latencies, sizes)."""

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.vmin = value if self.vmin is None else min(self.vmin, value)
            self.vmax = value if self.vmax is None else max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "total": round(self.total, 6),
                "mean": round(self.mean, 6),
                "min": round(self.vmin, 6) if self.vmin is not None else None,
                "max": round(self.vmax, 6) if self.vmax is not None else None,
            }


class MetricsRegistry:
    """Create-or-get metric instruments plus a snapshot of all of them."""

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name))

    def snapshot(self) -> dict:
        """All instruments, deterministically ordered."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].summary() for name in sorted(histograms)
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

    def to_prometheus(self, prefix: str = "repro") -> str:
        return render_prometheus(self.snapshot(), prefix=prefix)


# -- Prometheus text exposition --------------------------------------------


def _prom_name(*parts: str) -> str:
    """Join metric name parts into a legal Prometheus identifier."""
    return "_".join(parts).replace(".", "_").replace("-", "_")


def _prom_number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def _label_suffix(labels: Optional[dict]) -> str:
    if not labels:
        return ""
    rendered = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{{{rendered}}}"


def render_prometheus(
    snapshot: dict,
    prefix: str = "repro",
    labels: Optional[dict] = None,
    emit_types: bool = True,
) -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix, histograms become
    summaries (``_count``/``_sum`` plus ``_min``/``_max`` gauges), and
    any extra sections in the snapshot (``cache``, ``pool``, ``faults``)
    are flattened into gauges, with string values collected into one
    ``<prefix>_<section>_info{...} 1`` metric per section.  Output is
    sorted, so identical state renders byte-identically.

    ``labels`` attaches a fixed label set to every sample — the cluster
    front-end renders each shard's snapshot with
    ``labels={"shard_id": ...}`` so one scrape distinguishes shards.
    ``emit_types=False`` drops the ``# TYPE`` comment lines, so several
    labelled renders of the same metric names can be concatenated
    without repeating type declarations.
    """
    lines: list = []
    suffix = _label_suffix(labels)

    def emit(name: str, kind: str, value) -> None:
        if emit_types:
            lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{suffix} {_prom_number(value)}")

    for name in sorted(snapshot.get("counters", ())):
        emit(
            _prom_name(prefix, name, "total"),
            "counter",
            snapshot["counters"][name],
        )
    for name in sorted(snapshot.get("gauges", ())):
        emit(_prom_name(prefix, name), "gauge", snapshot["gauges"][name])
    for name in sorted(snapshot.get("histograms", ())):
        summary = snapshot["histograms"][name]
        base = _prom_name(prefix, name)
        if emit_types:
            lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count{suffix} {_prom_number(summary['count'])}")
        lines.append(f"{base}_sum{suffix} {_prom_number(summary['total'])}")
        for stat in ("min", "max"):
            if summary.get(stat) is not None:
                emit(f"{base}_{stat}", "gauge", summary[stat])
    for section in sorted(snapshot):
        mapping = snapshot[section]
        if section in ("counters", "gauges", "histograms"):
            continue
        if not isinstance(mapping, dict):
            continue
        info: list = []
        flat: list = []

        def _walk(path, value, flat=flat, info=info):
            if isinstance(value, dict):
                for child in sorted(value):
                    _walk(path + (child,), value[child])
            elif isinstance(value, (int, float, bool)):
                flat.append((path, value))
            elif isinstance(value, str):
                info.append(("_".join(path), value))

        _walk((), mapping)
        for path, value in flat:
            emit(_prom_name(prefix, section, *path), "gauge", value)
        if info:
            pairs = list(labels.items()) if labels else []
            fixed = {key for key, _ in pairs}
            # a fixed label wins over a same-named section string (e.g.
            # the engine's shard section repeating shard_id)
            pairs += [(key, val) for key, val in info if key not in fixed]
            rendered = ",".join(f'{key}="{val}"' for key, val in pairs)
            name = _prom_name(prefix, section, "info")
            if emit_types:
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{{{rendered}}} 1")
    return "\n".join(lines) + "\n"

"""Tests for typed memory views, vtables, and virtual dispatch."""

import pytest

from repro.core import construct, new_object
from repro.cxx import INT, make_class
from repro.errors import ApiMisuseError, LayoutError, SegmentationFault
from repro.workloads import set_ssn


class TestInstanceFieldAccess:
    def test_set_get_roundtrip(self, machine, student_classes):
        student, _ = student_classes
        inst = machine.static_object(student, "s")
        inst.set("gpa", 3.9)
        inst.set("year", 2008)
        assert inst.get("gpa") == 3.9
        assert inst.get("year") == 2008

    def test_field_address_matches_layout(self, machine, student_classes):
        student, _ = student_classes
        inst = machine.static_object(student, "s")
        assert inst.field_address("semester") == inst.address + 12

    def test_inherited_field_access(self, machine, student_classes):
        _, grad = student_classes
        inst = machine.static_object(grad, "g")
        inst.set("gpa", 4.0)  # declared in Student
        assert inst.get("gpa") == 4.0

    def test_field_values_snapshot(self, machine, student_classes):
        student, _ = student_classes
        inst = machine.static_object(student, "s")
        construct(machine, student, inst.address, 3.5, 2009, 2)
        values = inst.field_values()
        assert values == {"gpa": 3.5, "year": 2009, "semester": 2}

    def test_as_type_reinterprets_without_conversion(self, machine, student_classes):
        student, grad = student_classes
        inst = machine.static_object(student, "s")
        reinterpreted = inst.as_type(grad)
        assert reinterpreted.address == inst.address
        assert reinterpreted.size == 32

    def test_raw_bytes_length(self, machine, student_classes):
        student, _ = student_classes
        inst = machine.static_object(student, "s")
        assert len(inst.raw_bytes()) == 16


class TestUncheckedArrayAccess:
    def test_in_bounds(self, machine, student_classes):
        _, grad = student_classes
        inst = machine.static_object(grad, "g")
        inst.set_element("ssn", 2, 123456789)
        assert inst.get_element("ssn", 2) == 123456789

    def test_out_of_bounds_writes_neighbour(self, machine, student_classes):
        # The Listing 6 copy loop: indexes past the declared length
        # silently write past the object.
        _, grad = student_classes
        g1 = machine.static_object(grad, "g1")
        g2 = machine.static_object(grad, "g2")
        g1.set_element("ssn", 4, 777)  # ssn has 3 elements
        assert g1.element_address("ssn", 4) == g2.address
        assert machine.space.read_int(g2.address) == 777

    def test_wildly_out_of_bounds_faults(self, machine, student_classes):
        _, grad = student_classes
        inst = machine.static_object(grad, "g")
        with pytest.raises(SegmentationFault):
            inst.set_element("ssn", 10**7, 1)

    def test_non_array_field_rejected(self, machine, student_classes):
        student, _ = student_classes
        inst = machine.static_object(student, "s")
        with pytest.raises(ApiMisuseError):
            inst.get_element("gpa", 0)


class TestNestedMembers:
    def test_nested_view(self, machine, student_classes):
        student, _ = student_classes
        from repro.workloads import make_mobile_player

        player_cls = make_mobile_player(student)
        player = machine.static_object(player_cls, "p")
        stud1 = player.nested("stud1")
        stud1.set("gpa", 2.5)
        assert stud1.address == player.address
        assert player.nested("stud2").address == player.address + 16

    def test_nested_on_scalar_rejected(self, machine, student_classes):
        student, _ = student_classes
        inst = machine.static_object(student, "s")
        with pytest.raises(ApiMisuseError):
            inst.nested("gpa")


class TestVTableDispatch:
    def test_constructor_installs_vptr(self, machine, virtual_student_classes):
        student, _ = virtual_student_classes
        inst = machine.static_object(student, "s")
        construct(machine, student, inst.address)
        table = machine.vtables.lookup("Student")
        assert inst.read_vptr() == table.address

    def test_virtual_dispatch_selects_override(self, machine, virtual_student_classes):
        student, grad = virtual_student_classes
        inst = machine.static_object(grad, "g")
        construct(machine, grad, inst.address)
        result = machine.virtual_call(inst.as_type(student), "getInfo")
        assert result.function_name == "GradStudent::getInfo"

    def test_base_dispatch(self, machine, virtual_student_classes):
        student, _ = virtual_student_classes
        inst = machine.static_object(student, "s")
        construct(machine, student, inst.address)
        result = machine.virtual_call(inst, "getInfo")
        assert result.function_name == "Student::getInfo"

    def test_corrupted_vptr_to_garbage_faults(self, machine, virtual_student_classes):
        student, _ = virtual_student_classes
        inst = machine.static_object(student, "s")
        construct(machine, student, inst.address)
        inst.write_vptr(0x41414141)
        with pytest.raises(SegmentationFault):
            machine.virtual_call(inst, "getInfo")

    def test_vptr_on_non_polymorphic_rejected(self, machine, student_classes):
        student, _ = student_classes
        inst = machine.static_object(student, "s")
        with pytest.raises(LayoutError):
            inst.read_vptr()

    def test_unknown_virtual_rejected(self, machine, virtual_student_classes):
        student, _ = virtual_student_classes
        inst = machine.static_object(student, "s")
        construct(machine, student, inst.address)
        with pytest.raises(ApiMisuseError):
            machine.virtual_call(inst, "nope")

    def test_vtable_slots_live_in_text(self, machine, virtual_student_classes):
        student, _ = virtual_student_classes
        machine.vtables.ensure(student)
        table = machine.vtables.lookup("Student")
        entry = machine.space.read_pointer(table.slot_address(0))
        assert machine.text.function_at(entry) is not None


class TestConstructors:
    def test_default_constructor_zeroes(self, machine, student_classes):
        student, _ = student_classes
        inst = machine.static_object(student, "s")
        machine.space.write(inst.address, b"\xff" * 16)
        construct(machine, student, inst.address)
        assert inst.get("gpa") == 0.0
        assert inst.get("year") == 0

    def test_value_constructor(self, machine, student_classes):
        _, grad = student_classes
        inst = machine.static_object(grad, "g")
        construct(machine, grad, inst.address, 4.0, 2009, 1)
        assert inst.get("gpa") == 4.0
        assert inst.get("year") == 2009

    def test_grad_ctor_leaves_ssn_uninitialized(self, machine, student_classes):
        _, grad = student_classes
        inst = machine.static_object(grad, "g")
        machine.space.write_int(inst.address + 16, 0x5A5A5A5A, signed=False)
        construct(machine, grad, inst.address, 4.0, 2009, 1)
        # C++ does not zero ssn[]; neither do we.
        assert inst.get_element("ssn", 0) == 0x5A5A5A5A

    def test_copy_construct_from_instance(self, machine, student_classes):
        student, _ = student_classes
        a = machine.static_object(student, "a")
        construct(machine, student, a.address, 3.7, 2010, 2)
        b = machine.static_object(student, "b")
        construct(machine, student, b.address, a)
        assert b.get("gpa") == 3.7

    def test_default_shallow_copy_when_no_ctor(self, machine):
        plain = make_class("Plain", fields=[("x", INT)])
        a = machine.static_object(plain, "a")
        a.set("x", 5)
        b = machine.static_object(plain, "b")
        construct(machine, plain, b.address, a)
        assert b.get("x") == 5

    def test_no_ctor_with_args_rejected(self, machine):
        plain = make_class("Plain2", fields=[("x", INT)])
        inst = machine.static_object(plain, "p")
        with pytest.raises(ApiMisuseError):
            construct(machine, plain, inst.address, 1, 2)

    def test_new_object_allocates_on_heap(self, machine, student_classes):
        student, _ = student_classes
        inst = new_object(machine, student)
        from repro.memory import SegmentKind

        assert machine.space.segment(SegmentKind.HEAP).contains(
            inst.address, inst.size
        )
        assert machine.tracker.lookup(inst.address) is not None

    def test_set_ssn_helper(self, machine, student_classes):
        _, grad = student_classes
        inst = machine.static_object(grad, "g")
        set_ssn(inst, 1, 2, 3)
        assert [inst.get_element("ssn", i) for i in range(3)] == [1, 2, 3]

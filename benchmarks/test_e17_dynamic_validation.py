"""E17 (extension) — static findings validated by dynamic execution.

The corpus listings are both *analyzed* (static detector) and *executed*
(MiniC++ interpreter on the simulator).  For each listing the table
shows the detector's verdict next to the anomaly execution actually
exhibited — overflowing placement, control-flow hijack, leak bytes,
exfiltrated secrets.  Agreement on every row is the strongest evidence
the detector reports real, exploitable defects rather than patterns.
"""

from repro.analysis import analyze_source
from repro.execution import run_source
from repro.runtime import CanaryPolicy, Machine, MachineConfig, password_file
from repro.workloads.corpus import (
    LISTING_11,
    LISTING_12,
    LISTING_13,
    LISTING_15,
    LISTING_21,
    LISTING_22,
    LISTING_23,
    SAFE_PLACEMENT,
)

from conftest import print_table


def _plain():
    return Machine(
        MachineConfig(canary_policy=CanaryPolicy.NONE, save_frame_pointer=True)
    )


def _dynamic_anomaly(key):
    """Execute one listing; return a short description of what happened."""
    if key == "listing11":
        interp, _ = run_source(
            LISTING_11.source, entry="addStudent", args=(True,), stdin=(1, 2, 777)
        )
        stud2 = interp.globals.lookup("stud2")
        year = interp.machine.space.read_int(stud2.address + 8)
        return ("neighbour corrupted", year == 777)
    if key == "listing12":
        interp, _ = run_source(LISTING_12.source, stdin=(1, 2, 3))
        return ("heap neighbour + metadata", interp.machine.heap.is_corrupted())
    if key == "listing13":
        machine = _plain()
        target = machine.text.function_named("system").address
        _, outcome = run_source(
            LISTING_13.source,
            entry="addStudent",
            args=(True,),
            machine=machine,
            stdin=(-1, target, -1),
        )
        return ("return hijacked", outcome.frame_exit.hijacked)
    if key == "listing15":
        machine = _plain()
        _, outcome = run_source(
            LISTING_15.source,
            entry="addStudent",
            args=(True,),
            machine=machine,
            stdin=(100,),
        )
        return ("loop bound rewritten", outcome.steps > 100)
    if key == "listing21":
        machine = Machine()
        machine.files.add(password_file())
        interp, _ = run_source(LISTING_21.source, machine=machine)
        return ("secret exfiltrated", b"$6$" in interp.stored[0][1])
    if key == "listing22":
        interp, _ = run_source(LISTING_22.source)
        return ("object residue exfiltrated", len(interp.stored[0][1]) == 32)
    if key == "listing23":
        interp, _ = run_source(LISTING_23.source, entry="addStudents", args=(10,))
        return ("bytes leaked", interp.machine.tracker.leaked_bytes == 80)
    if key == "safe":
        interp, _ = run_source(SAFE_PLACEMENT.source, entry="recycle", args=())
        return ("no anomaly", not interp.machine.placement_log.overflowing())
    raise KeyError(key)


CASES = [
    ("listing11", LISTING_11),
    ("listing12", LISTING_12),
    ("listing13", LISTING_13),
    ("listing15", LISTING_15),
    ("listing21", LISTING_21),
    ("listing22", LISTING_22),
    ("listing23", LISTING_23),
    ("safe", SAFE_PLACEMENT),
]


def run_experiment():
    rows = []
    agreements = []
    for key, program in CASES:
        static_flagged = analyze_source(program.source).flagged
        anomaly_label, anomaly_observed = _dynamic_anomaly(key)
        agree = static_flagged == anomaly_observed if key != "safe" else (
            not static_flagged and anomaly_observed
        )
        agreements.append(agree)
        rows.append(
            (
                program.key,
                "FLAGGED" if static_flagged else "clean",
                anomaly_label,
                "observed" if anomaly_observed else "-",
                "agree" if agree else "DISAGREE",
            )
        )
    print_table(
        "E17: static verdict vs dynamic observation, same source",
        ["listing", "static", "dynamic anomaly", "dynamic", "verdict"],
        rows,
    )
    return agreements


def test_e17_shape(benchmark):
    agreements = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert all(agreements), "static and dynamic verdicts must agree on every row"

"""E22 — differential-fuzzing throughput: executions per second.

The fuzz loop runs every input through a full parse + static analysis
and a complete simulated execution, so its throughput is a composite
health metric for the whole stack (parser, detector, interpreter,
memory simulator).  This experiment records executions per second for
the sequential core and the service-batched campaign driver, plus the
campaign-level divergence rate, as ``extra_info`` on the benchmark
record so the BENCH trajectory can track fuzzing economics over time.
"""

import os
import time

from conftest import print_table

from repro.fuzz import FuzzConfig, run_campaign
from repro.service import ServiceEngine

ITERATIONS = 150
WORKERS = 4

_CORES = os.cpu_count() or 1


def test_e22_sequential_exec_rate(benchmark):
    """Throughput of the in-process mutate→oracles→merge loop."""
    config = FuzzConfig(seed=7, iterations=ITERATIONS, minimize=False)

    report = benchmark.pedantic(run_campaign, args=(config,), rounds=1)

    elapsed = benchmark.stats.stats.mean
    execs_per_s = report.execs / elapsed if elapsed else 0.0
    benchmark.extra_info["execs"] = report.execs
    benchmark.extra_info["execs_per_s"] = round(execs_per_s, 2)
    benchmark.extra_info["divergence_rate"] = round(report.divergence_rate, 5)
    print_table(
        f"E22 sequential campaign (seed 7, {ITERATIONS} iterations)",
        ["metric", "value"],
        [
            ["executions", str(report.execs)],
            ["execs/sec", f"{execs_per_s:.1f}"],
            ["divergences", str(len(report.divergences))],
            ["divergence rate", f"{report.divergence_rate:.4f}"],
            ["un-triaged", str(len(report.untriaged))],
        ],
    )
    assert report.execs > 0
    assert report.untriaged == []


def test_e22_service_campaign_scales():
    """The batched driver keeps the workers busy: with enough cores a
    4-worker campaign beats the sequential loop on wall-clock."""
    config = FuzzConfig(seed=7, iterations=ITERATIONS, minimize=False)

    started = time.perf_counter()
    sequential = run_campaign(config)
    sequential_s = time.perf_counter() - started

    with ServiceEngine(workers=WORKERS, use_cache=False) as engine:
        started = time.perf_counter()
        batched = run_campaign(config, engine=engine, batch_size=40)
        batched_s = time.perf_counter() - started

    print_table(
        f"E22 campaign driver ({ITERATIONS} iterations, "
        f"{WORKERS} workers, {_CORES} cores)",
        ["path", "seconds", "execs", "execs/sec"],
        [
            [
                "sequential",
                f"{sequential_s:.3f}",
                str(sequential.execs),
                f"{sequential.execs / sequential_s:.1f}",
            ],
            [
                "service batches",
                f"{batched_s:.3f}",
                str(batched.execs),
                f"{batched.execs / batched_s:.1f}",
            ],
        ],
    )
    # Both paths run the full campaign and end fully triaged.
    assert sequential.untriaged == [] and batched.untriaged == []
    assert batched.batches_failed == 0
    if _CORES >= WORKERS:
        assert batched_s < sequential_s, (
            f"expected {WORKERS}-worker campaign ({batched_s:.3f}s) to "
            f"beat sequential ({sequential_s:.3f}s) on {_CORES} cores"
        )

"""E20 — service-layer throughput: parallel sweeps and cache economics.

The claims behind docs/SERVICE.md: (1) a corpus sweep submitted through
the scheduler returns findings *identical* to the sequential
``analyze_source`` loop; (2) a warm second sweep is served almost
entirely from the result cache (>90% hit rate) and is much cheaper than
recomputing; (3) with enough cores, ≥4 process workers beat the
sequential loop on wall-clock.  Speedup numbers are always recorded in
the printed table; the strict speedup assertion only applies where the
host actually has ≥4 cores (CI runners), since a single-core box cannot
parallelize CPU-bound analysis no matter the architecture.
"""

import os
import time

from conftest import print_table

from repro.analysis import analyze_source
from repro.service import ServiceEngine
from repro.service.workers import report_payload
from repro.workloads import corpus_sources

#: Paper corpus + reproducible generated programs = the sweep workload.
GENERATED = 120
WORKERS = 4

_CORES = os.cpu_count() or 1
_BACKEND = "process" if _CORES >= WORKERS else "thread"


def _workload():
    return corpus_sources(generated=GENERATED)


def test_e20_parallel_sweep_speedup_and_hit_rate():
    sources = _workload()

    started = time.perf_counter()
    sequential = [
        report_payload(analyze_source(source), label=label)
        for label, source in sources
    ]
    sequential_s = time.perf_counter() - started

    with ServiceEngine(workers=WORKERS, backend=_BACKEND) as engine:
        started = time.perf_counter()
        cold = engine.sweep(sources)
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = engine.sweep(sources)
        warm_s = time.perf_counter() - started
        stats = engine.cache.stats()

    print_table(
        f"E20 corpus sweep ({len(sources)} programs, "
        f"{WORKERS} {_BACKEND} workers, {_CORES} cores)",
        ["path", "seconds", "speedup vs sequential"],
        [
            ["sequential analyze_source", f"{sequential_s:.4f}", "1.00x"],
            [
                "scheduler, cold cache",
                f"{cold_s:.4f}",
                f"{sequential_s / cold_s:.2f}x",
            ],
            [
                "scheduler, warm cache",
                f"{warm_s:.4f}",
                f"{sequential_s / warm_s:.2f}x",
            ],
        ],
    )
    print(
        f"cache: {stats['hits']} hits / {stats['misses']} misses "
        f"(hit rate {stats['hit_rate']:.2%}), {stats['stores']} stores"
    )

    # (1) findings identical to the sequential path, both runs
    assert cold == sequential
    assert warm == sequential
    # (2) the warm sweep is >90% cache hits and cheaper than recomputing
    warm_hit_rate = stats["hits"] / len(sources)
    assert warm_hit_rate > 0.90
    assert stats["stores"] == len(sources)  # nothing recomputed when warm
    assert warm_s < sequential_s
    # (3) real parallel speedup wherever the host can express it
    if _CORES >= WORKERS:
        assert cold_s < sequential_s, (
            f"expected ≥4-worker sweep ({cold_s:.3f}s) to beat "
            f"sequential ({sequential_s:.3f}s) on {_CORES} cores"
        )


def test_e20_parallel_matrix_throughput():
    from repro.service.workers import run_matrix

    started = time.perf_counter()
    sequential = run_matrix({})
    sequential_s = time.perf_counter() - started

    with ServiceEngine(workers=WORKERS, backend=_BACKEND) as engine:
        started = time.perf_counter()
        parallel = engine.matrix(parallel=True)
        parallel_s = time.perf_counter() - started

    print_table(
        f"E20 attack × defense matrix ({len(sequential['cells'])} cells)",
        ["path", "seconds", "speedup"],
        [
            ["sequential evaluate_matrix", f"{sequential_s:.4f}", "1.00x"],
            [
                f"{WORKERS} {_BACKEND} workers",
                f"{parallel_s:.4f}",
                f"{sequential_s / parallel_s:.2f}x",
            ],
        ],
    )
    assert parallel["attacks_succeeding"] == sequential["attacks_succeeding"]
    if _CORES >= WORKERS:
        assert parallel_s < sequential_s


def test_e20_cache_hit_latency(benchmark):
    """Latency of a fully-warm analysis request (pure cache-hit path)."""
    label, source = _workload()[0]
    with ServiceEngine(workers=2) as engine:
        engine.analyze(source, label=label)  # prime
        benchmark(engine.analyze, source, label)
        assert engine.cache.hit_rate > 0.90

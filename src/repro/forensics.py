"""Post-mortem forensics: snapshots, diffs, and address annotation.

The reproduction's equivalent of the paper's "Before Attack / After
Attack" printouts, generalized: snapshot the whole image, run the
attack, diff — every changed byte range comes back annotated with what
lives there (which global, which heap block, which frame slot), so a
report reads like a debugger session rather than a hex soup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .memory.segments import SegmentKind
from .runtime.frames import CallFrame
from .runtime.machine import Machine


@dataclass(frozen=True)
class ChangedRange:
    """One contiguous run of bytes that differ between snapshots."""

    address: int
    before: bytes
    after: bytes
    segment: SegmentKind
    annotation: str = ""

    @property
    def length(self) -> int:
        return len(self.before)

    def describe(self) -> str:
        note = f"  ({self.annotation})" if self.annotation else ""
        return (
            f"{self.address:#010x} +{self.length:<4d} [{self.segment.value:5s}] "
            f"{self.before.hex()} -> {self.after.hex()}{note}"
        )


class MemorySnapshot:
    """A full copy of every segment's bytes at one instant."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._segments = {
            segment.kind: segment.snapshot() for segment in machine.space.segments
        }
        self._bases = {
            segment.kind: segment.base for segment in machine.space.segments
        }

    def diff(self, other: "MemorySnapshot") -> list[ChangedRange]:
        """Changed ranges from this snapshot to ``other`` (same machine)."""
        changes: list[ChangedRange] = []
        for kind, before in self._segments.items():
            after = other._segments.get(kind)
            if after is None or before == after:
                continue
            base = self._bases[kind]
            start: Optional[int] = None
            for index in range(len(before) + 1):
                differs = index < len(before) and before[index] != after[index]
                if differs and start is None:
                    start = index
                elif not differs and start is not None:
                    changes.append(
                        ChangedRange(
                            address=base + start,
                            before=bytes(before[start:index]),
                            after=bytes(after[start:index]),
                            segment=kind,
                        )
                    )
                    start = None
        return changes


def annotate_address(
    machine: Machine, address: int, frame: Optional[CallFrame] = None
) -> str:
    """Human-readable description of what lives at ``address``."""
    # Frame slots first: the most security-relevant locations.
    if frame is not None:
        if address == frame.slots.return_slot:
            return f"return address of {frame.name}()"
        if frame.slots.fp_slot is not None and address == frame.slots.fp_slot:
            return f"saved frame pointer of {frame.name}()"
        if (
            frame.slots.canary_slot is not None
            and address == frame.slots.canary_slot
        ):
            return f"stack canary of {frame.name}()"
        for allocation in frame.locals:
            if allocation.address <= address < allocation.end:
                offset = address - allocation.address
                return f"local '{allocation.name}'+{offset} in {frame.name}()"
    # Globals.
    for name in _global_names(machine):
        var = machine.global_var(name)
        if var.address <= address < var.address + var.size:
            return f"global '{name}'+{address - var.address}"
    # Heap blocks.
    segment = machine.space.find_segment(address)
    if segment is None:
        return "unmapped"
    if segment.kind is SegmentKind.HEAP:
        for block in machine.heap.blocks():
            if block.corrupted:
                break
            if block.header_address <= address < block.payload_address:
                return "heap block header (allocator metadata)"
            if (
                block.payload_address
                <= address
                < block.payload_address + block.payload_size
            ):
                record = machine.tracker.lookup(block.payload_address)
                label = record.label if record else "anonymous"
                return f"heap payload '{label}'+{address - block.payload_address}"
    if segment.kind is SegmentKind.TEXT:
        entry = machine.text.function_at(address)
        if entry is not None:
            return f"function entry {entry.name}()"
        table = machine.text.vtable_at(address)
        if table is not None:
            return f"vtable of {table.class_name}"
        return "text"
    return segment.kind.value


def _global_names(machine: Machine) -> tuple:
    return tuple(machine._globals)  # noqa: SLF001 - forensics is privileged


@dataclass
class AttackForensics:
    """Snapshot-diff harness around an attack run."""

    machine: Machine
    frame: Optional[CallFrame] = None
    _before: Optional[MemorySnapshot] = None
    changes: list = field(default_factory=list)

    def begin(self) -> None:
        """Capture the pre-attack state."""
        self._before = MemorySnapshot(self.machine)

    def end(self) -> list[ChangedRange]:
        """Capture the post-attack state and compute annotated changes."""
        if self._before is None:
            raise RuntimeError("begin() was not called")
        after = MemorySnapshot(self.machine)
        annotated: list[ChangedRange] = []
        for change in self._before.diff(after):
            annotated.append(
                ChangedRange(
                    address=change.address,
                    before=change.before,
                    after=change.after,
                    segment=change.segment,
                    annotation=annotate_address(
                        self.machine, change.address, self.frame
                    ),
                )
            )
        self.changes = annotated
        return annotated

    def report(self) -> str:
        """The full annotated diff."""
        if not self.changes:
            return "no memory changes recorded"
        return "\n".join(change.describe() for change in self.changes)

"""Heap overflow — paper Section 3.5.1, Listing 12.

A ``Student`` is heap-allocated, then ``name = new char[16]`` lands in
the very next heap block.  Placing a ``GradStudent`` over the Student's
arena and feeding ``ssn[]`` from stdin writes 12 bytes past the arena:
through the allocator's boundary tag and into ``name``'s payload.  The
paper's printout ("Before Attack / After Attack") is reproduced in the
result detail, and — because our allocator keeps real in-band metadata —
the collateral heap corruption a real glibc would suffer is visible too.
"""

from __future__ import annotations

from ..core.new_expr import new_array, new_object
from ..cxx.types import CHAR
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment


class HeapOverflowAttack(AttackScenario):
    """Listing 12: ``ssn[]`` of the placed object rewrites heap neighbour."""

    name = "heap-overflow"
    paper_ref = "§3.5.1, Listing 12"
    description = "GradStudent placed over heap Student clobbers adjacent name[]"

    def __init__(
        self, ssn_inputs: tuple[int, int, int] = (0x58585858, 0x59595959, 0x5A5A5A5A)
    ) -> None:
        self.ssn_inputs = ssn_inputs

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        stud = new_object(machine, student_cls)
        env.protect(machine, stud.address, stud.size)
        name = new_array(machine, CHAR, 16)
        machine.space.strncpy(name.address, "abcdefghijklmno", 16)
        name_before = machine.space.read_c_string(name.address)

        machine.stdin.feed(*self.ssn_inputs)
        st = env.place(machine, stud, grad_cls)
        for index in range(3):
            st.set_element("ssn", index, machine.stdin.read_int())

        name_after_raw = machine.space.read(name.address, 16)
        name_after = machine.space.read_c_string(name.address)
        heap_corrupted = machine.heap.is_corrupted()
        succeeded = name_after_raw != b"abcdefghijklmno\x00" or heap_corrupted
        return self.result(
            env,
            succeeded=succeeded,
            machine=machine,
            name_before=name_before,
            name_after=name_after,
            heap_metadata_corrupted=heap_corrupted,
            overflow_gap=name.address - stud.end,
        )

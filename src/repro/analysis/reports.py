"""Findings and reports produced by the analyzers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class Severity(enum.IntEnum):
    """Ordered so reports can be filtered with comparisons."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnosed issue at a source location."""

    rule: str
    severity: Severity
    message: str
    line: int
    function: str = ""
    tool: str = "placement-analyzer"

    def render(self) -> str:
        """gcc-style one-liner."""
        where = f" in {self.function}()" if self.function else ""
        return f"{self.line}: {self.severity.label()}: [{self.rule}] {self.message}{where}"


@dataclass
class AnalysisReport:
    """All findings for one program."""

    tool: str
    findings: list = field(default_factory=list)

    def __post_init__(self) -> None:
        # Dedup index maintained alongside the list: rebuilding the key
        # set on every add is quadratic over a report's lifetime.  Not a
        # dataclass field, so eq/repr still compare tool + findings only.
        self._seen = {(f.rule, f.line, f.function) for f in self.findings}

    def add(self, finding: Finding) -> None:
        """Append, deduplicating identical (rule, line, function) triples."""
        key = (finding.rule, finding.line, finding.function)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(finding)

    def rules_fired(self) -> frozenset:
        """The distinct rule identifiers present."""
        return frozenset(finding.rule for finding in self.findings)

    def at_least(self, severity: Severity) -> list:
        """Findings at or above a severity."""
        return [f for f in self.findings if f.severity >= severity]

    @property
    def flagged(self) -> bool:
        """True when anything warning-or-worse was found."""
        return bool(self.at_least(Severity.WARNING))

    @staticmethod
    def _order(finding: Finding) -> tuple:
        """Total order over findings so every rendering is deterministic."""
        return (finding.line, finding.rule, finding.function, finding.message)

    def render(self) -> str:
        """Multi-line report, sorted by location."""
        if not self.findings:
            return f"{self.tool}: no findings"
        lines = [f"{self.tool}: {len(self.findings)} finding(s)"]
        for finding in sorted(self.findings, key=self._order):
            lines.append("  " + finding.render())
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable output for CI/SARIF-style integration: keys
        sorted, findings in a stable total order."""
        import json

        return json.dumps(
            {
                "tool": self.tool,
                "findings": [
                    {
                        "rule": finding.rule,
                        "severity": finding.severity.label(),
                        "message": finding.message,
                        "line": finding.line,
                        "function": finding.function,
                    }
                    for finding in sorted(self.findings, key=self._order)
                ],
            },
            indent=2,
            sort_keys=True,
        )


def merge_reports(tool: str, reports: Iterable[AnalysisReport]) -> AnalysisReport:
    """Combine per-function reports into one."""
    merged = AnalysisReport(tool=tool)
    for report in reports:
        for finding in report.findings:
            merged.add(finding)
    return merged

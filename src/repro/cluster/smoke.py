"""CI smoke: a live 3-shard cluster survives caching and shard loss.

``python -m repro.cluster.smoke`` starts a real ``repro-cluster``
front-end on an ephemeral port and drives it over HTTP:

1. a cold analyze sweep, then the same sweep warm — asserting the warm
   pass is served >90% from the tiered cache with identical bytes;
2. a fresh sweep with one shard killed mid-flight — asserting the
   report bytes match a no-fault control run of the same sweep;
3. a per-shard metrics dump written to ``--out`` for the CI artifact.

Exit 0 on success, 1 with a diagnostic on any violated invariant.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional, Sequence, Tuple

from ..workloads.corpus import corpus_sources
from .client import AsyncClusterClient
from .quotas import QuotaManager
from .router import ClusterRouter, build_shards
from .server import create_cluster_server

VARIANT = """
class Base {{ public: double d; }};
class Wide{i} : public Base {{ public: int pad[{i} + 4]; }};
void spill{i}() {{ Base slot; Wide{i} *w = new (&slot) Wide{i}(); }}
"""


def smoke_sources(count: int) -> List[Tuple[str, str]]:
    """A deterministic labeled sweep: the paper corpus plus variants."""
    pairs = list(corpus_sources())
    for index in range(max(0, count - len(pairs))):
        pairs.append((f"variant-{index}", VARIANT.format(i=index)))
    return pairs[:count]


async def _sweep_bytes(client: AsyncClusterClient, sources) -> bytes:
    response = await client.sweep(sources)
    return json.dumps(response["reports"], sort_keys=True).encode()


async def _run(args) -> int:
    failures: List[str] = []

    def check(ok: bool, message: str) -> None:
        status = "ok" if ok else "FAIL"
        print(f"[{status}] {message}", flush=True)
        if not ok:
            failures.append(message)

    sources = smoke_sources(args.sweep_size)

    shards = await build_shards(
        args.shards, mode=args.shard_mode, workers=args.workers,
        cache_dir=args.cache_dir, use_cache=True,
    )
    router = ClusterRouter(shards, vnodes=args.vnodes)
    server = await create_cluster_server(router, quotas=QuotaManager())
    client = AsyncClusterClient("127.0.0.1", server.port, tenant="smoke")
    try:
        health = await client.healthz()
        check(
            health.get("shards_live") == args.shards,
            f"{args.shards} shards live behind http://127.0.0.1:{server.port}",
        )

        cold = await _sweep_bytes(client, sources)
        before = (await client.metrics())["tiers"]
        warm = await _sweep_bytes(client, sources)
        after = (await client.metrics())["tiers"]
        lookups = after["lookups"] - before["lookups"]
        hits = sum(after["hits"].values()) - sum(before["hits"].values())
        rate = hits / lookups if lookups else 0.0
        check(cold == warm, "warm sweep bytes identical to cold sweep")
        check(
            rate > 0.9,
            f"warm sweep hit rate {rate:.2%} ({hits}/{lookups}) > 90%",
        )

        # control bytes for the failover sweep: a separate no-fault
        # cluster; determinism says any correct run produces these bytes
        fresh = [
            (f"failover-{label}", text + f"\n// failover pass\n")
            for label, text in sources
        ]
        control_shards = await build_shards(
            1, mode="inprocess", workers=args.workers,
            cache_dir=None, use_cache=True, prefix="control",
        )
        control = ClusterRouter(control_shards, vnodes=args.vnodes)
        control_server = await create_cluster_server(control)
        control_client = AsyncClusterClient("127.0.0.1", control_server.port)
        try:
            expected = await _sweep_bytes(control_client, fresh)
        finally:
            await control_server.close()

        victim = health["shards"][1]
        sweep_task = asyncio.ensure_future(_sweep_bytes(client, fresh))
        await asyncio.sleep(args.kill_delay)  # let the sweep get airborne
        await client.kill(victim)
        survived = await sweep_task
        check(
            survived == expected,
            f"sweep with '{victim}' killed mid-flight matches no-fault bytes",
        )
        topology = await client.cluster()
        check(
            topology["shards"][victim]["state"] == "dead"
            and len(topology["ring"]["shards"]) == args.shards - 1,
            f"ring remapped around dead shard '{victim}'",
        )

        if args.out:
            document = await client.metrics()
            with open(args.out, "w") as handle:
                json.dump(document, handle, sort_keys=True, indent=2)
            print(f"metrics dump written to {args.out}", flush=True)
    finally:
        await server.close()
    if failures:
        print(f"{len(failures)} smoke check(s) failed", file=sys.stderr)
        return 1
    print("cluster smoke passed", flush=True)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.smoke", description=__doc__
    )
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--vnodes", type=int, default=64)
    parser.add_argument(
        "--shard-mode", choices=("inprocess", "subprocess"), default="inprocess"
    )
    parser.add_argument("--sweep-size", type=int, default=24)
    parser.add_argument(
        "--cache-dir", default=None, help="shared disk cache tier (optional)"
    )
    parser.add_argument(
        "--kill-delay",
        type=float,
        default=0.05,
        help="seconds into the failover sweep to kill the victim shard",
    )
    parser.add_argument(
        "--out", default=None, help="write the per-shard metrics dump here"
    )
    args = parser.parse_args(argv)
    return asyncio.run(_run(args))


if __name__ == "__main__":
    sys.exit(main())

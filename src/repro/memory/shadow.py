"""Shadow memory with red zones — an AddressSanitizer-style detector.

The paper argues (Section 5.2) that runtime schemes are the practical
protection for legacy code but that bounds checking is hard because
placement new *"just operates on an address, not on a lexically declared
array"*.  This module implements the strongest runtime scheme we
evaluate: every byte of the simulated space has a shadow state, arenas
registered by the defended allocator are bracketed by *red zones*, and a
write touching a red byte raises :class:`RedZoneViolation`.

It hooks :class:`~repro.memory.address_space.AddressSpace` writes, so it
sees attacks no matter which code path performed the store.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import ApiMisuseError, RedZoneViolation
from .address_space import AddressSpace


class ShadowState(enum.IntEnum):
    """Per-byte classification."""

    UNTRACKED = 0
    ADDRESSABLE = 1
    RED_ZONE = 2


@dataclass(frozen=True)
class RedZonePair:
    """The two guard ranges bracketing one protected arena."""

    arena_base: int
    arena_size: int
    zone_size: int

    @property
    def left(self) -> range:
        """Guard range below the arena."""
        return range(self.arena_base - self.zone_size, self.arena_base)

    @property
    def right(self) -> range:
        """Guard range above the arena."""
        end = self.arena_base + self.arena_size
        return range(end, end + self.zone_size)


class ShadowMemory:
    """Byte-granular shadow map plus the write hook enforcing it."""

    DEFAULT_ZONE = 16

    def __init__(self, space: AddressSpace, zone_size: int = DEFAULT_ZONE) -> None:
        if zone_size <= 0:
            raise ApiMisuseError(f"red zone size must be positive, got {zone_size}")
        self._space = space
        self._zone_size = zone_size
        self._states: dict[int, ShadowState] = {}
        self._pairs: list[RedZonePair] = []
        self._violations: list[RedZoneViolation] = []
        self._armed = False
        self._halt_on_violation = True

    # -- registration -------------------------------------------------------

    def protect_arena(self, base: int, size: int) -> RedZonePair:
        """Mark ``[base, base+size)`` addressable and bracket it in red.

        The left zone is only laid down where the space is mapped, so
        protecting an arena at a segment start degrades gracefully.
        """
        if size <= 0:
            raise ApiMisuseError(f"arena size must be positive, got {size}")
        pair = RedZonePair(arena_base=base, arena_size=size, zone_size=self._zone_size)
        for addr in range(base, base + size):
            self._states[addr] = ShadowState.ADDRESSABLE
        for zone in (pair.left, pair.right):
            for addr in zone:
                if self._space.is_mapped(addr):
                    # Never demote an addressable byte of another arena.
                    if self._states.get(addr) != ShadowState.ADDRESSABLE:
                        self._states[addr] = ShadowState.RED_ZONE
        self._pairs.append(pair)
        return pair

    def unprotect_arena(self, pair: RedZonePair) -> None:
        """Remove an arena's tracking (e.g. on free)."""
        for addr in range(pair.arena_base, pair.arena_base + pair.arena_size):
            self._states.pop(addr, None)
        for zone in (pair.left, pair.right):
            for addr in zone:
                if self._states.get(addr) == ShadowState.RED_ZONE:
                    self._states.pop(addr)
        self._pairs.remove(pair)

    def state_at(self, address: int) -> ShadowState:
        """Shadow classification of one byte."""
        return self._states.get(address, ShadowState.UNTRACKED)

    # -- enforcement -----------------------------------------------------

    def arm(self, halt_on_violation: bool = True) -> None:
        """Start checking every write through the address space."""
        if self._armed:
            return
        self._halt_on_violation = halt_on_violation
        self._space.add_access_hook(self._on_access)
        self._armed = True

    def disarm(self) -> None:
        """Stop checking writes."""
        if not self._armed:
            return
        self._space.remove_access_hook(self._on_access)
        self._armed = False

    def _on_access(self, address: int, data: bytes, is_write: bool) -> None:
        if not is_write:
            return
        for offset in range(len(data)):
            if self._states.get(address + offset) == ShadowState.RED_ZONE:
                violation = RedZoneViolation(address + offset, len(data))
                self._violations.append(violation)
                if self._halt_on_violation:
                    raise violation
                return

    @property
    def violations(self) -> tuple[RedZoneViolation, ...]:
        """All red-zone hits observed so far."""
        return tuple(self._violations)

    @property
    def protected_arenas(self) -> tuple[RedZonePair, ...]:
        """Currently protected arenas."""
        return tuple(self._pairs)

    def first_violation(self) -> Optional[RedZoneViolation]:
        """The earliest recorded violation, if any."""
        return self._violations[0] if self._violations else None

"""Alignment arithmetic used by the layout engine and the allocators.

The paper's Listing 15 attack hinges on padding: an overflowing
``GradStudent`` member lands in the padding *between* two stack locals
before it reaches the victim variable.  Getting padding right is therefore
load-bearing for the reproduction, and all of it funnels through the three
helpers in this module.
"""

from __future__ import annotations

from ..errors import ApiMisuseError


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def check_alignment(alignment: int) -> None:
    """Validate an alignment argument (positive power of two)."""
    if not is_power_of_two(alignment):
        raise ApiMisuseError(
            f"alignment must be a positive power of two, got {alignment}"
        )


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    check_alignment(alignment)
    if value < 0:
        raise ApiMisuseError(f"cannot align negative value {value}")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    check_alignment(alignment)
    if value < 0:
        raise ApiMisuseError(f"cannot align negative value {value}")
    return value & ~(alignment - 1)


def padding_for(offset: int, alignment: int) -> int:
    """Bytes of padding needed so that ``offset`` becomes aligned."""
    return align_up(offset, alignment) - offset


def is_aligned(value: int, alignment: int) -> bool:
    """Return True if ``value`` is a multiple of ``alignment``."""
    check_alignment(alignment)
    return value % alignment == 0

"""Segments of the simulated process image.

The paper's attacks are classified by which segment the overflowed arena
lives in — stack, heap, or data/bss (Section 3.5: *"instances stud1 and
stud2 are allocated in data/bss area (ELF format)"*).  A
:class:`Segment` is a contiguous virtual-address range backed by a
``bytearray``, with read/write/execute permissions so that NX-stack
defenses (Section 5.2) can be modelled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ApiMisuseError, SegmentationFault


class SegmentKind(enum.Enum):
    """The ELF-style segment classes the paper refers to."""

    TEXT = "text"
    DATA = "data"
    BSS = "bss"
    HEAP = "heap"
    STACK = "stack"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Permissions:
    """Read/write/execute permission bits for a segment."""

    read: bool = True
    write: bool = True
    execute: bool = False

    def describe(self) -> str:
        """Render like the ``/proc/<pid>/maps`` permission column."""
        return (
            ("r" if self.read else "-")
            + ("w" if self.write else "-")
            + ("x" if self.execute else "-")
        )


#: Conventional permissions per segment kind for a classic (pre-NX) process,
#: matching the paper's Ubuntu 10.04 testbed where code injection on the
#: stack was meaningful.
DEFAULT_PERMISSIONS = {
    SegmentKind.TEXT: Permissions(read=True, write=False, execute=True),
    SegmentKind.DATA: Permissions(read=True, write=True, execute=False),
    SegmentKind.BSS: Permissions(read=True, write=True, execute=False),
    SegmentKind.HEAP: Permissions(read=True, write=True, execute=True),
    SegmentKind.STACK: Permissions(read=True, write=True, execute=True),
}


@dataclass
class Segment:
    """A contiguous, byte-addressable region of the simulated image."""

    kind: SegmentKind
    base: int
    size: int
    permissions: Permissions = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ApiMisuseError(f"segment size must be positive, got {self.size}")
        if self.base < 0:
            raise ApiMisuseError(f"segment base must be non-negative, got {self.base}")
        if self.permissions is None:
            self.permissions = DEFAULT_PERMISSIONS[self.kind]
        self._data = bytearray(self.size)

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """True if ``[address, address+length)`` lies fully inside."""
        return self.base <= address and address + length <= self.end

    def _offset(self, address: int, length: int, access: str) -> int:
        if not self.contains(address, length):
            raise SegmentationFault(
                address, access, f"outside {self.kind.value} segment"
            )
        return address - self.base

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes; faults if unreadable or out of range."""
        if not self.permissions.read:
            raise SegmentationFault(address, "read", "segment is not readable")
        offset = self._offset(address, length, "read")
        return bytes(self._data[offset : offset + length])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``; faults if unwritable or out of range."""
        if not self.permissions.write:
            raise SegmentationFault(address, "write", "segment is not writable")
        offset = self._offset(address, len(data), "write")
        self._data[offset : offset + len(data)] = data

    def fill(self, address: int, length: int, byte: int = 0) -> None:
        """memset-style fill, used by memory sanitization (Section 5.1)."""
        if not 0 <= byte <= 0xFF:
            raise ApiMisuseError(f"fill byte out of range: {byte}")
        self.write(address, bytes([byte]) * length)

    def snapshot(self) -> bytes:
        """Copy of the whole segment's contents (for forensics/diffs)."""
        return bytes(self._data)

    def describe(self) -> str:
        """One line in the style of ``/proc/<pid>/maps``."""
        return (
            f"{self.base:08x}-{self.end:08x} {self.permissions.describe()} "
            f"{self.kind.value}"
        )

"""Stack overflow via object placement — Section 3.6, Listing 13.

``addStudent`` declares a local ``Student stud`` and places a
``GradStudent`` over it; the loop ``while (++i < 3) { cin >> dssn;
if (dssn > 0) gs->ssn[i] = dssn; }`` copies attacker words upward into
the frame's fixed slots.  The ``dssn > 0`` guard is the paper's lever
for the Section 5.2 StackGuard experiment: feeding non-positive values
for the canary/FP iterations leaves them intact, and only the return
address changes — the *selective overwrite* StackGuard cannot see.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..runtime.control_flow import FrameExit
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment


class ReturnAddressAttack(AttackScenario):
    """Listing 13: rewrite the return address through ``ssn[]``.

    ``inputs`` are the three stdin words; by the paper's convention any
    non-positive word skips its write.  ``target_symbol`` names the
    function whose entry address the attacker substitutes wherever an
    input equals the sentinel ``TARGET`` (resolved per machine, since
    addresses differ between runs).
    """

    name = "stack-return-address"
    paper_ref = "§3.6.1, Listing 13"
    description = "object overflow rewrites the saved return address"

    #: Sentinel input meaning "the resolved attack target address".
    TARGET = "TARGET"

    def __init__(
        self,
        inputs: Optional[Sequence] = None,
        target_symbol: str = "system",
        naive: bool = False,
    ) -> None:
        self.inputs = tuple(inputs) if inputs is not None else None
        self.target_symbol = target_symbol
        self.naive = naive

    def _default_inputs(self, env: Environment) -> tuple:
        """Aim the TARGET word at the return slot for this frame shape
        (the attacker reads the shape off the victim binary).

        ``naive`` fills every word on the way with positive garbage —
        trampling canary and FP — while the selective default supplies
        non-positive values so the guarded loop skips those writes.
        """
        words: list = (
            [0x41414141, 0x42424242, 0x43434343] if self.naive else [-1, -1, -1]
        )
        ret_index = 0
        if env.machine_config.save_frame_pointer:
            ret_index += 1
        if env.machine_config.canary_policy.enabled:
            ret_index += 1
        words[ret_index] = self.TARGET
        return tuple(words)

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        inputs = self.inputs if self.inputs is not None else self._default_inputs(env)
        target = machine.text.function_named(self.target_symbol).address
        machine.stdin.feed(
            *[target if token == self.TARGET else int(token) for token in inputs]
        )

        frame = machine.push_frame("addStudent")
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)
        gs = env.place(machine, stud, grad_cls)
        for index in range(3):
            dssn = machine.stdin.read_int()
            if dssn > 0:
                gs.set_element("ssn", index, dssn)
        exit_: FrameExit = machine.pop_frame(frame)

        reached_target = (
            exit_.execution is not None
            and exit_.execution.function_name == self.target_symbol
        )
        return self.result(
            env,
            succeeded=exit_.hijacked and reached_target,
            machine=machine,
            hijacked=exit_.hijacked,
            returned_to=hex(exit_.returned_to),
            canary_intact=exit_.canary_intact,
            fp_clobbered=exit_.fp_clobbered,
            reached=exit_.execution.function_name if exit_.execution else None,
        )


def naive_smash(target_symbol: str = "system") -> ReturnAddressAttack:
    """All words positive: tramples canary and FP on the way to the
    return slot (StackGuard catches this variant)."""
    attack = ReturnAddressAttack(target_symbol=target_symbol, naive=True)
    attack.name = "stack-naive-smash"
    return attack


def selective_overwrite(
    env: Environment, target_symbol: str = "system"
) -> ReturnAddressAttack:
    """The Section 5.2 evasion: skip every fixed word except the return
    slot, via the guarded loop's non-positive inputs."""
    attack = ReturnAddressAttack(target_symbol=target_symbol, naive=False)
    attack.name = "stack-selective-overwrite"
    return attack


class CanarySkipExperiment(AttackScenario):
    """The full Section 5.2 experiment as one scenario: under the given
    environment, run the naive smash and the selective overwrite and
    report both outcomes."""

    name = "canary-skip-experiment"
    paper_ref = "§3.6.1 + §5.2"
    description = "naive smash is detected; selective overwrite is not"

    def execute(self, env: Environment) -> AttackResult:
        naive_result = naive_smash().run(env)
        selective_result = selective_overwrite(env).run(env)
        return self.result(
            env,
            # The experiment "succeeds" when the selective variant works.
            succeeded=selective_result.succeeded,
            naive=naive_result.describe(),
            naive_detected=naive_result.detected_by,
            selective=selective_result.describe(),
            selective_canary_intact=selective_result.detail.get("canary_intact"),
        )

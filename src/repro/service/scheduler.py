"""The job scheduler: bounded priority queue + dispatch over a worker pool.

Submission path::

    handle = scheduler.submit(AnalyzeJob(source), priority=HIGH_PRIORITY)
    result = handle.result(timeout=30)

``submit`` first consults the result cache (same job key + same
detector/config version → resolved immediately, no queueing).  Cache
misses enter a bounded :class:`queue.PriorityQueue`; when the queue is
full, ``submit`` raises :class:`QueueFull` instead of blocking — the
caller (e.g. the HTTP front end) decides whether to shed load or wait.

One dispatcher thread per pool worker pops jobs in priority order and
executes them on the pool with a per-job timeout.  Failures raising
:class:`~repro.service.workers.TransientWorkerError` are retried with
exponential backoff plus deterministic, key-seeded jitter (so jobs that
fail together do not retry in lockstep, and the same job still backs
off identically on every run); anything else fails the job immediately.

Timeouts are terminal for the *job* (``TIMED_OUT``) but not for the
pool: a worker that is still running when its deadline passes cannot be
cancelled in-process, so the scheduler *abandons* it — the straggler is
tracked in the ``scheduler.workers_abandoned`` gauge, the pool is
expanded by one replacement worker (thread backend), and the loan is
repaid when the straggler eventually finishes.  Concurrent abandons are
capped (``max_abandoned``); past the cap the scheduler keeps resolving
jobs but marks their outcomes degraded instead of growing forever.

Every submission opens a :class:`~repro.service.tracing.JobTrace`;
its per-stage spans ride on :attr:`JobOutcome.trace` and remain
queryable through :attr:`Scheduler.traces` (→ ``GET /trace/<key>``).
A :class:`~repro.service.faults.FaultPlan` can be attached to inject
retryable dispatch faults through a seam in ``_execute``.

``shutdown(wait=True)`` drains the queue then stops the dispatchers;
``wait=False`` cancels everything still queued.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from .cache import ResultCache
from .faults import DISPATCH_FAULTS, FaultPlan
from .jobs import NORMAL_PRIORITY, Job
from .metrics import MetricsRegistry
from .tracing import JobTrace, TraceBuffer
from .workers import TransientWorkerError, WorkerPool


class QueueFull(RuntimeError):
    """The bounded work queue rejected a submission."""


class JobFailed(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job did not succeed."""


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed-out"
    CANCELLED = "cancelled"


@dataclass
class JobOutcome:
    """Everything the scheduler learned about one finished job."""

    key: str
    kind: str
    status: JobStatus
    result: Optional[dict] = None
    error: Optional[str] = None
    attempts: int = 0
    duration: float = 0.0
    from_cache: bool = False
    detail: dict = field(default_factory=dict)
    #: The job's span record (``JobTrace.to_dict()``): trace id plus one
    #: ``{stage, at, detail}`` entry per lifecycle stage.
    trace: Optional[dict] = None


class JobHandle:
    """Future-like view of one submitted job."""

    def __init__(self, job: Job):
        self.job = job
        self._event = threading.Event()
        self._outcome: Optional[JobOutcome] = None

    def _resolve(self, outcome: JobOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def outcome(self, timeout: Optional[float] = None) -> JobOutcome:
        """Block until finished and return the full outcome record."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"job {self.job.key()} still pending")
        assert self._outcome is not None
        return self._outcome

    def result(self, timeout: Optional[float] = None) -> dict:
        """The worker's result dict, raising :class:`JobFailed` otherwise."""
        outcome = self.outcome(timeout)
        if outcome.status is not JobStatus.SUCCEEDED:
            raise JobFailed(
                f"job {outcome.key} {outcome.status.value}: {outcome.error}"
            )
        assert outcome.result is not None
        return outcome.result


_STOP = object()


class Scheduler:
    """Priority scheduling, caching, retries, and metrics for job runs."""

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_queue: int = 256,
        default_timeout: float = 60.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_jitter: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        fault_plan: Optional[FaultPlan] = None,
        traces: Optional[TraceBuffer] = None,
        max_abandoned: Optional[int] = None,
    ):
        self.pool = pool or WorkerPool()
        self._owns_pool = pool is None
        self.cache = cache
        self.metrics = metrics or MetricsRegistry()
        self.default_timeout = default_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self._sleep = sleep
        self.fault_plan = fault_plan
        self.traces = traces if traces is not None else TraceBuffer()
        self.max_abandoned = (
            max_abandoned if max_abandoned is not None else 2 * self.pool.size
        )
        self._abandoned_now = 0
        self._abandon_lock = threading.Lock()
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue(maxsize=max_queue)
        self._seq = itertools.count()
        self._stopping = False
        self._lock = threading.Lock()
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatch-{index}",
                daemon=True,
            )
            for index in range(self.pool.size)
        ]
        for thread in self._dispatchers:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        job: Job,
        priority: int = NORMAL_PRIORITY,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        use_cache: bool = True,
    ) -> JobHandle:
        """Queue one job; returns immediately with a handle."""
        if self._stopping:
            raise RuntimeError("scheduler is shut down")
        handle = JobHandle(job)
        key = job.key()
        trace = self.traces.start(key, job.KIND)
        trace.record("submitted", priority=priority)
        self.metrics.counter("scheduler.jobs_submitted").inc()
        if self.cache is not None and use_cache and job.CACHEABLE:
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.counter("scheduler.cache_hits").inc()
                trace.record("cache-hit")
                self._finish(
                    handle,
                    trace,
                    JobOutcome(
                        key=key,
                        kind=job.KIND,
                        status=JobStatus.SUCCEEDED,
                        result=cached,
                        from_cache=True,
                    ),
                )
                return handle
        item = (
            priority,
            next(self._seq),
            job,
            handle,
            timeout if timeout is not None else self.default_timeout,
            max_retries if max_retries is not None else self.max_retries,
            use_cache,
            time.monotonic(),
            trace,
        )
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            trace.record("rejected", reason="queue-full")
            raise QueueFull(
                f"work queue at capacity ({self._queue.maxsize} jobs)"
            ) from None
        depth = self._queue.qsize()
        trace.record("queued", depth=depth)
        self.metrics.gauge("scheduler.queue_depth").set(depth)
        return handle

    def map(
        self,
        jobs: Iterable[Job],
        priority: int = NORMAL_PRIORITY,
        **submit_kwargs,
    ) -> List[JobHandle]:
        """Submit a batch, preserving order of the returned handles."""
        return [self.submit(job, priority=priority, **submit_kwargs) for job in jobs]

    def run(self, job: Job, **submit_kwargs) -> dict:
        """Submit one job and block for its result."""
        return self.submit(job, **submit_kwargs).result()

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item[2] is _STOP:
                self._queue.task_done()
                return
            _, _, job, handle, timeout, retries, use_cache, enqueued, trace = item
            self.metrics.gauge("scheduler.queue_depth").set(self._queue.qsize())
            waited = time.monotonic() - enqueued
            self.metrics.histogram("scheduler.queue_wait_seconds").observe(waited)
            trace.record("dispatched", waited=round(waited, 6))
            if self._stopping and self._cancelled_on_shutdown(job, handle, trace):
                self._queue.task_done()
                continue
            try:
                self._execute(job, handle, timeout, retries, use_cache, trace)
            finally:
                self._queue.task_done()

    def _finish(self, handle: JobHandle, trace: JobTrace, outcome: JobOutcome) -> None:
        """Stamp the terminal span, attach the trace, resolve the handle."""
        trace.record(
            "resolved",
            status=outcome.status.value,
            attempts=outcome.attempts or None,
            from_cache=outcome.from_cache or None,
        )
        outcome.trace = trace.to_dict()
        handle._resolve(outcome)

    def _cancelled_on_shutdown(
        self, job: Job, handle: JobHandle, trace: JobTrace
    ) -> bool:
        self.metrics.counter("scheduler.jobs_cancelled").inc()
        self._finish(
            handle,
            trace,
            JobOutcome(
                key=job.key(),
                kind=job.KIND,
                status=JobStatus.CANCELLED,
                error="scheduler shut down before the job ran",
            ),
        )
        return True

    def _backoff_delay(self, key: str, attempt: int) -> float:
        """Exponential backoff with deterministic, key-seeded jitter.

        Pure exponential backoff retries co-failing jobs in lockstep;
        classic decorrelated jitter fixes that but makes tests flaky.
        Hashing ``key:attempt`` gives every job its own stable fraction
        in ``[0, 1)``, spreading the herd while staying byte-for-byte
        reproducible across runs and processes.
        """
        base = min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)
        if not self.backoff_jitter:
            return base
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return min(self.backoff_cap, base * (0.5 + fraction))

    def _abandon(self, future: Future) -> bool:
        """Account for a worker that blew its deadline; returns degraded.

        A future that never started is simply cancelled (its slot was
        never held).  A running straggler is counted in the
        ``workers_abandoned`` gauge and covered by a replacement worker
        (``pool.expand``); when it eventually finishes, the done
        callback repays the loan.  Past ``max_abandoned`` concurrent
        stragglers the pool stops growing and outcomes are flagged
        degraded instead.
        """
        if future.cancel():
            return False
        with self._abandon_lock:
            self._abandoned_now += 1
            degraded = self._abandoned_now > self.max_abandoned
            expanded = False if degraded else self.pool.expand(1)
            self.metrics.counter("scheduler.workers_abandoned_total").inc()
            self.metrics.gauge("scheduler.workers_abandoned").set(self._abandoned_now)
            if degraded:
                self.metrics.counter("scheduler.degraded").inc()

        def _reclaim(finished: Future, expanded: bool = expanded) -> None:
            finished.exception()  # consume, so stray errors are not logged
            with self._abandon_lock:
                self._abandoned_now -= 1
                self.metrics.gauge("scheduler.workers_abandoned").set(
                    self._abandoned_now
                )
            if expanded:
                self.pool.shrink(1)

        future.add_done_callback(_reclaim)
        return degraded

    @property
    def abandoned_workers(self) -> int:
        """Stragglers currently running past their deadline."""
        with self._abandon_lock:
            return self._abandoned_now

    def _execute(
        self,
        job: Job,
        handle: JobHandle,
        timeout: float,
        retries: int,
        use_cache: bool,
        trace: JobTrace,
    ) -> None:
        key = job.key()
        payload = job.payload()
        started = time.monotonic()
        busy = self.metrics.gauge("scheduler.workers_busy")
        busy.add(1)
        attempts = 0
        try:
            while True:
                attempts += 1
                trace.record("attempt", n=attempts)
                future: Optional[Future] = None
                try:
                    if self.fault_plan is not None:
                        rule = self.fault_plan.activate(
                            DISPATCH_FAULTS, job_kind=job.KIND, key=key
                        )
                        if rule is not None:
                            raise TransientWorkerError(
                                "injected transient dispatch fault"
                            )
                    future = self.pool.submit(job.KIND, payload)
                    result = future.result(timeout=timeout)
                except FutureTimeout:
                    degraded = self._abandon(future)
                    self.metrics.counter("scheduler.jobs_timed_out").inc()
                    trace.record("timed-out", after=timeout, degraded=degraded or None)
                    self._finish(
                        handle,
                        trace,
                        JobOutcome(
                            key=key,
                            kind=job.KIND,
                            status=JobStatus.TIMED_OUT,
                            error=f"no result within {timeout}s",
                            attempts=attempts,
                            duration=time.monotonic() - started,
                            detail={"degraded": degraded} if degraded else {},
                        ),
                    )
                    return
                except TransientWorkerError as error:
                    if attempts <= retries:
                        delay = self._backoff_delay(key, attempts)
                        self.metrics.counter("scheduler.jobs_retried").inc()
                        trace.record("retry", delay=round(delay, 6), error=str(error))
                        self._sleep(delay)
                        continue
                    self._fail(handle, key, job, error, attempts, started, trace)
                    return
                except Exception as error:  # worker bug or bad payload
                    self._fail(handle, key, job, error, attempts, started, trace)
                    return
                duration = time.monotonic() - started
                self.metrics.counter("scheduler.jobs_succeeded").inc()
                self.metrics.histogram("scheduler.job_seconds").observe(duration)
                if self.cache is not None and use_cache and job.CACHEABLE:
                    self._store(key, result, trace)
                self._finish(
                    handle,
                    trace,
                    JobOutcome(
                        key=key,
                        kind=job.KIND,
                        status=JobStatus.SUCCEEDED,
                        result=result,
                        attempts=attempts,
                        duration=duration,
                    ),
                )
                return
        finally:
            busy.add(-1)

    def _store(self, key: str, result: dict, trace: JobTrace) -> None:
        """Cache a success; a failing cache must never fail the job."""
        assert self.cache is not None
        try:
            durable = self.cache.put(key, result)
        except Exception as error:  # belt and braces: put() should not raise
            durable = False
            trace.record("cache-write-error", error=f"{type(error).__name__}: {error}")
        if durable:
            trace.record("cached")
        else:
            self.metrics.counter("scheduler.cache_write_errors").inc()
            trace.record("cache-write-error")

    def _fail(
        self,
        handle: JobHandle,
        key: str,
        job: Job,
        error: Exception,
        attempts: int,
        started: float,
        trace: JobTrace,
    ) -> None:
        self.metrics.counter("scheduler.jobs_failed").inc()
        trace.record("failed", error=f"{type(error).__name__}: {error}")
        self._finish(
            handle,
            trace,
            JobOutcome(
                key=key,
                kind=job.KIND,
                status=JobStatus.FAILED,
                error=f"{type(error).__name__}: {error}",
                attempts=attempts,
                duration=time.monotonic() - started,
            ),
        )

    # -- lifecycle ---------------------------------------------------------

    def drain(self) -> None:
        """Block until every queued and in-flight job has resolved."""
        self._queue.join()

    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatching.  ``wait=True`` drains first; ``wait=False``
        cancels everything still queued."""
        with self._lock:
            if self._stopping:
                return
            if wait:
                self.drain()
            self._stopping = True
        if not wait:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item[2] is not _STOP:
                    self._cancelled_on_shutdown(item[2], item[3], item[8])
                self._queue.task_done()
        for _ in self._dispatchers:
            self._queue.put(
                (10 ** 9, next(self._seq), _STOP, None, 0, 0, False, 0.0, None)
            )
        for thread in self._dispatchers:
            thread.join(timeout=5.0)
        if self._owns_pool:
            self.pool.shutdown()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

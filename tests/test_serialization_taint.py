"""Tests for remote objects, the JSON codec, and taint tracking."""

import pytest

from repro.core import construct, new_object
from repro.errors import ApiMisuseError
from repro.serialization import (
    RemoteObject,
    construct_from_remote,
    honest_service,
    malicious_service,
    serialize,
    wire_size_estimate,
)
from repro.taint import TaintEngine, TaintLabel, TaintedValue
from repro.workloads import set_ssn


class TestRemoteObject:
    def test_json_roundtrip(self):
        remote = RemoteObject("Student", {"gpa": 3.5, "year": 2010})
        parsed = RemoteObject.from_json(remote.to_json())
        assert parsed.class_name == "Student"
        assert parsed.fields["gpa"] == 3.5

    def test_untrusted_by_default(self):
        parsed = RemoteObject.from_json('{"__class__": "Student", "gpa": 1.0}')
        assert parsed.tainted

    def test_trusted_flag(self):
        parsed = RemoteObject.from_json(
            '{"__class__": "Student"}', trusted=True
        )
        assert not parsed.tainted

    def test_malformed_json_rejected(self):
        with pytest.raises(ApiMisuseError):
            RemoteObject.from_json("{not json")
        with pytest.raises(ApiMisuseError):
            RemoteObject.from_json('{"no_class": 1}')

    def test_wire_size_unrelated_to_memory_size(self):
        remote = RemoteObject("Student", {"gpa": 3.5})
        assert wire_size_estimate(remote) == len(remote.to_json())


class TestServices:
    def test_honest_names_count(self):
        names = honest_service().get_names(honest_count=4)
        assert len(names.value) == 4
        assert TaintLabel.NETWORK in names.labels

    def test_malicious_names_inflated(self):
        names = malicious_service().get_names(honest_count=4)
        assert len(names.value) == 16

    def test_malicious_student_lies_about_courses(self):
        remote = malicious_service().get_student()
        assert remote.get("n") > 2
        assert len(remote.get("courseid")) == remote.get("n")
        assert remote.tainted

    def test_honest_student_is_clean(self):
        remote = honest_service().get_student()
        assert not remote.tainted
        assert remote.get("n") == 2


class TestDeserialization:
    def test_construct_from_remote_sets_fields(self, machine, student_classes):
        student, _ = student_classes
        remote = RemoteObject(
            "Student", {"gpa": 3.25, "year": 2011, "semester": 2}
        )
        arena = machine.static_object(student, "arena")
        inst = construct_from_remote(machine, student, arena.address, remote)
        assert inst.get("gpa") == 3.25
        assert inst.get("year") == 2011

    def test_construct_from_remote_marks_taint(self, machine, student_classes):
        student, _ = student_classes
        taint = TaintEngine(machine.space)
        remote = RemoteObject("Student", {"gpa": 1.0, "year": 1, "semester": 1})
        arena = machine.static_object(student, "arena")
        construct_from_remote(machine, student, arena.address, remote, taint=taint)
        assert taint.is_tainted(arena.address, arena.size)

    def test_serialize_reads_memory(self, machine, student_classes):
        _, grad = student_classes
        inst = new_object(machine, grad, 3.0, 2012, 1)
        set_ssn(inst, 9, 8, 7)
        wire = serialize(inst)
        assert wire.fields["gpa"] == 3.0
        assert wire.fields["ssn"] == [9, 8, 7]

    def test_serialize_ships_residue(self, machine, student_classes):
        # The Listing 22 exfiltration path: serialize reads raw memory.
        student, grad = student_classes
        big = new_object(machine, grad)
        set_ssn(big, 123, 45, 67)
        construct(machine, student, big.address)
        wire = serialize(machine.instance(grad, big.address))
        assert wire.fields["ssn"] == [123, 45, 67]

    def test_deserializing_virtual_class_installs_vptr(
        self, machine, virtual_student_classes
    ):
        student, _ = virtual_student_classes
        remote = RemoteObject("Student", {"gpa": 2.0, "year": 1, "semester": 1})
        arena = machine.static_object(student, "arena")
        inst = construct_from_remote(machine, student, arena.address, remote)
        assert inst.read_vptr() == machine.vtables.lookup("Student").address


class TestTaintEngine:
    def test_mark_and_query(self, machine):
        taint = TaintEngine(machine.space)
        taint.mark(0x1000, 4, TaintLabel.STDIN)
        assert taint.is_tainted(0x1000)
        assert taint.is_tainted(0x1003)
        assert not taint.is_tainted(0x1004)
        assert taint.labels_at(0x1000) == frozenset({TaintLabel.STDIN})

    def test_labels_union(self, machine):
        taint = TaintEngine(machine.space)
        taint.mark(0x1000, 2, TaintLabel.STDIN)
        taint.mark(0x1001, 2, TaintLabel.NETWORK)
        assert taint.labels_at(0x1000, 3) == frozenset(
            {TaintLabel.STDIN, TaintLabel.NETWORK}
        )

    def test_clear(self, machine):
        taint = TaintEngine(machine.space)
        taint.mark(0x1000, 4, TaintLabel.FILE)
        taint.clear(0x1000, 4)
        assert not taint.is_tainted(0x1000, 4)
        assert taint.tainted_byte_count == 0

    def test_propagate_copy_adds_derived(self, machine):
        taint = TaintEngine(machine.space)
        taint.mark(0x1000, 4, TaintLabel.STDIN)
        taint.propagate_copy(0x2000, 0x1000, 4)
        assert TaintLabel.DERIVED in taint.labels_at(0x2000)
        assert TaintLabel.STDIN in taint.labels_at(0x2000)

    def test_propagate_copy_clears_clean_ranges(self, machine):
        taint = TaintEngine(machine.space)
        taint.mark(0x2000, 4, TaintLabel.STDIN)
        taint.propagate_copy(0x2000, 0x1000, 4)  # source untainted
        assert not taint.is_tainted(0x2000, 4)

    def test_write_tainted(self, machine):
        from repro.memory import SegmentKind

        taint = TaintEngine(machine.space)
        base = machine.space.segment(SegmentKind.BSS).base
        taint.write_tainted(base, b"\x2a\x00\x00\x00", TaintLabel.NETWORK)
        assert machine.space.read_int(base) == 42
        assert taint.is_tainted(base, 4)

    def test_tainted_value_wrapper(self):
        value = TaintedValue.from_source(42, TaintLabel.STDIN)
        derived = value.derive(43)
        assert derived.value == 43
        assert TaintLabel.DERIVED in derived.labels
        assert TaintLabel.STDIN in derived.labels

"""Tests for the defense harness, libsafe guard, and the E14 matrix."""

import pytest

from repro.attacks import (
    ConstructionOverflowAttack,
    DataBssOverflowAttack,
    all_attacks,
)
from repro.core import new_object
from repro.defenses import (
    ALL_DEFENSES,
    BASELINE,
    CORRECT_CODING,
    LibSafePlacementGuard,
    evaluate_matrix,
)
from repro.errors import BoundsCheckViolation
from repro.memory import SegmentKind
from repro.runtime import Machine
from repro.workloads import make_student_classes


class TestLibSafeGuard:
    def test_blocks_known_arena_overflow(self):
        machine = Machine()
        student, grad = make_student_classes()
        arena = machine.static_object(student, "arena")
        guard = LibSafePlacementGuard(machine)
        with pytest.raises(BoundsCheckViolation):
            guard.place(arena.address, grad)
        assert guard.records[-1].blocked

    def test_allows_fitting_placement(self):
        machine = Machine()
        student, grad = make_student_classes()
        big = new_object(machine, grad)
        guard = LibSafePlacementGuard(machine)
        placed = guard.place(big.address, student)
        assert placed.address == big.address
        assert not guard.records[-1].blocked

    def test_blind_spot_raw_interior_address(self):
        # The paper's caveat: an address the library never saw allocated
        # cannot be bounds-checked.
        machine = Machine()
        student, grad = make_student_classes()
        arena = machine.static_object(student, "arena")
        guard = LibSafePlacementGuard(machine)
        interior = arena.address + 4  # not an allocation start
        placed = guard.place(interior, grad)  # sails through
        assert placed.address == interior
        report = guard.coverage_report()
        assert report["blind_spots"] == 1
        assert report["coverage"] < 1.0

    def test_coverage_report_counts(self):
        machine = Machine()
        student, grad = make_student_classes()
        big = new_object(machine, grad)
        guard = LibSafePlacementGuard(machine)
        guard.place(big.address, student)
        bss = machine.space.segment(SegmentKind.BSS)
        guard.place(bss.base + 100, student)
        report = guard.coverage_report()
        assert report["placements"] == 2
        assert report["arena_known"] == 1


class TestEvaluationMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        scenarios = [ConstructionOverflowAttack(), DataBssOverflowAttack()]
        return evaluate_matrix(scenarios, ALL_DEFENSES)

    def test_baseline_loses_everywhere(self, matrix):
        assert matrix.wins_for_defense("none") == 2

    def test_correct_coding_blocks_overflows(self, matrix):
        assert matrix.wins_for_defense("checked-placement") == 0

    def test_stackguard_blind_to_object_overflow(self, matrix):
        # The paper's §1 claim: StackGuard doesn't see these.
        assert matrix.wins_for_defense("stackguard") == 2

    def test_cell_lookup(self, matrix):
        cell = matrix.cell("overflow-via-construction", "checked-placement")
        assert cell is not None
        assert cell.summary == "detected(bounds-check)"

    def test_render_contains_rows_and_totals(self, matrix):
        text = matrix.render()
        assert "overflow-via-construction" in text
        assert "attacks succeeding" in text


class TestShadowReturnStack:
    """§5.2's return-address stack: catches what StackGuard cannot."""

    def test_selective_overwrite_caught(self):
        from repro.attacks import SHADOW_RETURN_STACK, selective_overwrite

        result = selective_overwrite(SHADOW_RETURN_STACK).run(SHADOW_RETURN_STACK)
        assert not result.succeeded
        assert result.detected_by == "shadow-return-stack"

    def test_normal_returns_unaffected(self):
        from repro.attacks import SHADOW_RETURN_STACK

        machine = SHADOW_RETURN_STACK.make_machine()
        frame = machine.push_frame("f")
        exit_ = machine.pop_frame(frame)
        assert exit_.normal
        assert machine.return_shadow.checks == 1
        assert machine.return_shadow.tamper_events == 0

    def test_nested_frames_tracked(self):
        from repro.attacks import SHADOW_RETURN_STACK

        machine = SHADOW_RETURN_STACK.make_machine()
        outer = machine.push_frame("outer")
        inner = machine.push_frame("inner")
        assert machine.return_shadow.depth == 2
        machine.pop_frame(inner)
        machine.pop_frame(outer)
        assert machine.return_shadow.depth == 0

    def test_data_only_attacks_unaffected(self):
        from repro.attacks import SHADOW_RETURN_STACK, DataBssOverflowAttack

        result = DataBssOverflowAttack().run(SHADOW_RETURN_STACK)
        assert result.succeeded  # not a control-flow defense


class TestVtableIntegrity:
    def test_subterfuge_caught(self):
        from repro.attacks import VTABLE_INTEGRITY, VtableSubterfugeDataAttack

        result = VtableSubterfugeDataAttack().run(VTABLE_INTEGRITY)
        assert not result.succeeded
        assert result.detected_by == "vtable-integrity"

    def test_legitimate_dispatch_unaffected(self):
        from repro.attacks import VTABLE_INTEGRITY
        from repro.core import construct
        from repro.workloads import make_student_classes

        machine = VTABLE_INTEGRITY.make_machine()
        student, grad = make_student_classes(virtual=True)
        inst = machine.static_object(grad, "g")
        construct(machine, grad, inst.address)
        result = machine.virtual_call(inst.as_type(student), "getInfo")
        assert result.function_name == "GradStudent::getInfo"
        assert machine.vtable_guard.checks == 1
        assert machine.vtable_guard.violations == 0


class TestFullGalleryUnprotected:
    def test_every_attack_succeeds_on_baseline(self):
        """The paper's central result: all attacks demonstrated on the
        unprotected Ubuntu/gcc configuration."""
        for scenario in all_attacks():
            result = scenario.run(BASELINE.environment)
            assert result.succeeded, f"{scenario.name} failed: {result.detail}"

    def test_correct_coding_blocks_all_overflow_attacks(self):
        overflow_names = {
            "overflow-via-construction",
            "overflow-via-copy-constructor",
            "overflow-via-indirect-construction",
            "internal-overflow",
            "data-bss-overflow",
            "heap-overflow",
            "stack-return-address",
            "arc-injection",
            "code-injection",
            "data-variable-overwrite",
            "stack-local-overwrite",
            "member-variable-overwrite",
            "vtable-subterfuge-bss",
            "vtable-subterfuge-stack",
            "function-pointer-subterfuge",
            "variable-pointer-subterfuge",
            "two-step-stack-array",
            "two-step-bss-array",
            "dos-loop-inflation",
            "dos-auth-bypass",
            "dos-resource-exhaustion",
        }
        for scenario in all_attacks():
            if scenario.name not in overflow_names:
                continue
            result = scenario.run(CORRECT_CODING.environment)
            assert not result.succeeded, f"{scenario.name} won under checked placement"

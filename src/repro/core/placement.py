"""Placement new — the paper's vulnerable primitive, reproduced faithfully.

C++ defines placement new as nothing more than::

    void *operator new (size_t, void *p) throw() { return p; }
    void *operator new[] (size_t, void *p) throw() { return p; }

It returns the supplied pointer and runs the constructor there.  The
security-relevant properties (paper Section 2.5) are all reproduced:

1. **any address** allocated to the process is accepted;
2. **no bounds checking**, compile-time or runtime;
3. **no type checking** between the arena's former occupant and the new
   object;
4. **no alignment enforcement** (we *report* misalignment but never
   block it);
5. **no sanitization** of the arena's previous contents (the Listing
   21/22 information-leak precondition) and no automatic deallocation
   bookkeeping (the Listing 23 leak).

The checked counterpart recommended by Section 5.1 lives in
:mod:`repro.core.checked`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from ..cxx.classdef import ClassDef
from ..cxx.object_model import CArrayView, Instance
from ..cxx.types import CType
from ..errors import ApiMisuseError
from ..memory.alignment import is_aligned
from ..memory.pool import MemoryPool
from ..memory.tracker import ArenaOrigin
from .new_expr import NewContext, construct

#: Things that can serve as the placement address argument.
PlacementTarget = Union[int, Instance, CArrayView, MemoryPool]


@dataclass(frozen=True)
class PlacementRecord:
    """Audit record of one placement (consumed by defenses and tests)."""

    address: int
    size: int
    type_name: str
    misaligned: bool
    arena_size: Optional[int]

    @property
    def overflows_arena(self) -> Optional[bool]:
        """True/False when the arena size is known, None otherwise.

        ``None`` is the common — and dangerous — case: placement new is
        handed a bare pointer and nobody knows the arena's extent
        (Section 5.2: *"placement new just operates on an address, not on
        a lexically declared array"*).
        """
        if self.arena_size is None:
            return None
        return self.size > self.arena_size


def resolve_target(target: PlacementTarget) -> tuple[int, Optional[int]]:
    """Normalize a placement target to (address, known-arena-size).

    A raw ``int`` address has *unknown* extent; an Instance/array view
    contributes its static size; a pool reserves nothing here — callers
    wanting pool suballocation should call :meth:`MemoryPool.reserve`
    themselves (that is a separate expression in the source program).
    """
    if isinstance(target, Instance):
        return target.address, target.size
    if isinstance(target, CArrayView):
        return target.address, target.size
    if isinstance(target, MemoryPool):
        return target.base, target.capacity
    if isinstance(target, int):
        if target == 0:
            raise ApiMisuseError("placement address must be non-null")
        return target, None
    raise ApiMisuseError(f"cannot place at {target!r}")


class PlacementAuditLog:
    """Accumulates :class:`PlacementRecord` entries per context."""

    def __init__(self) -> None:
        self._records: list[PlacementRecord] = []
        self._observers: list = []

    def add_observer(self, observer) -> None:
        """Subscribe to placement events.

        Observers see each :class:`PlacementRecord` as it is audited —
        including placements at lexically-known arenas the allocation
        tracker never saw (a local ``char[]``, a bss array).  The VRT
        bounds table consults here; observers may raise to abort the
        placement the way a run-time bounds check would.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Unsubscribe a previously added observer."""
        self._observers.remove(observer)

    def add(self, record: PlacementRecord) -> None:
        """Append one placement event."""
        self._records.append(record)
        for observer in self._observers:
            observer(record)

    @property
    def records(self) -> tuple[PlacementRecord, ...]:
        """All placements, in order."""
        return tuple(self._records)

    def overflowing(self) -> tuple[PlacementRecord, ...]:
        """Placements *known* to exceed their arena."""
        return tuple(r for r in self._records if r.overflows_arena)


def _audit(ctx: NewContext, record: PlacementRecord) -> None:
    log = getattr(ctx, "placement_log", None)
    if log is not None:
        log.add(record)


def placement_new(
    ctx: NewContext,
    target: PlacementTarget,
    class_def: ClassDef,
    *args: Any,
) -> Instance:
    """``new (target) T(args...)`` — **unchecked**, per the standard.

    Whatever the relative sizes of the new object and the arena, the
    constructor runs and its writes land at ``target .. target+sizeof(T)``.
    If ``sizeof(T)`` exceeds the arena, the surplus writes fall onto the
    arena's neighbours: the object overflow of Section 3.
    """
    address, arena_size = resolve_target(target)
    layout = ctx.layouts.layout_of(class_def)
    misaligned = not is_aligned(address, layout.alignment)
    _audit(
        ctx,
        PlacementRecord(
            address=address,
            size=layout.size,
            type_name=class_def.name,
            misaligned=misaligned,
            arena_size=arena_size,
        ),
    )
    # Leak bookkeeping: if the address is a tracked arena, the program
    # now believes the arena is only sizeof(T) big (Listing 23).
    ctx.tracker.relabel(address, layout.size, label=class_def.name)
    return construct(ctx, class_def, address, *args)


def placement_new_array(
    ctx: NewContext,
    target: PlacementTarget,
    element: CType,
    count: int,
) -> CArrayView:
    """``new (target) T[count]`` — unchecked array placement.

    Note that C++ zero-initializes nothing here and neither do we: the
    arena's previous bytes remain readable through the new view, which is
    the Listing 21 information leak.
    """
    if count <= 0:
        raise ApiMisuseError(f"placement new[] length must be positive, got {count}")
    address, arena_size = resolve_target(target)
    size = element.size * count
    misaligned = not is_aligned(address, element.alignment)
    _audit(
        ctx,
        PlacementRecord(
            address=address,
            size=size,
            type_name=f"{element.name}[{count}]",
            misaligned=misaligned,
            arena_size=arena_size,
        ),
    )
    ctx.tracker.relabel(address, size, label=f"{element.name}[{count}]")
    return CArrayView(ctx, element, count, address)


def placement_new_in_pool(
    ctx: NewContext,
    pool: MemoryPool,
    class_def: ClassDef,
    *args: Any,
) -> Instance:
    """Suballocate from a pool, then construct there.

    The pool's ``reserve`` is a bump pointer with no overflow enforcement
    (unless the pool is a :class:`~repro.memory.pool.CheckedMemoryPool`),
    so this composes the two unchecked steps the paper's Section 4
    two-step attack relies on.
    """
    layout = ctx.layouts.layout_of(class_def)
    address = pool.reserve(layout.size, alignment=layout.alignment)
    ctx.tracker.record(address, layout.size, ArenaOrigin.POOL, label=class_def.name)
    return placement_new(ctx, address, class_def, *args)

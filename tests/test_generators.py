"""Tests for the randomized program generator and detector scoring."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_source, parse
from repro.workloads.generators import (
    generate_corpus,
    generate_program,
    score_detector,
)


class TestGeneration:
    def test_every_shape_generates_and_parses(self):
        rng = random.Random(1)
        for shape in ("direct", "helper", "guarded", "tainted-array"):
            for vulnerable in (True, False):
                program = generate_program(rng, vulnerable, shape=shape)
                parsed = parse(program.source)
                assert parsed.functions
                assert program.shape == shape
                assert program.vulnerable == vulnerable

    def test_vulnerable_means_oversize_or_tainted(self):
        rng = random.Random(2)
        for _ in range(20):
            program = generate_program(rng, vulnerable=True)
            if program.shape == "tainted-array":
                continue
            assert program.placed_size > program.arena_size

    def test_safe_means_it_fits(self):
        rng = random.Random(3)
        for _ in range(20):
            program = generate_program(rng, vulnerable=False)
            if program.shape == "guarded":
                continue  # guarded may be oversize but unreachable
            assert program.placed_size <= program.arena_size

    def test_leak_and_dos_shapes_generate_and_parse(self):
        rng = random.Random(4)
        for shape in ("leak", "dos-loop"):
            for vulnerable in (True, False):
                program = generate_program(rng, vulnerable, shape=shape)
                assert parse(program.source).functions
                assert program.shape == shape
                assert program.vulnerable == vulnerable

    def test_leak_safe_twin_sanitizes(self):
        rng = random.Random(4)
        assert "memset" in generate_program(rng, False, shape="leak").source
        assert "memset" not in generate_program(rng, True, shape="leak").source

    def test_dos_loop_carries_attacker_stdin(self):
        rng = random.Random(4)
        program = generate_program(rng, vulnerable=True, shape="dos-loop")
        assert program.stdin and program.stdin[0] >= 1 << 20

    def test_taint_source_variants_generate_and_parse(self):
        rng = random.Random(4)
        seen = set()
        for _ in range(30):
            for vulnerable in (True, False):
                program = generate_program(
                    rng, vulnerable, shape="taint-source"
                )
                assert parse(program.source).functions
                assert program.shape == "taint-source"
                assert program.vulnerable == vulnerable
                if "getenv" in program.source:
                    seen.add("env")
                elif "argc" in program.source:
                    seen.add("argv")
                else:
                    seen.add("stream")
        assert seen == {"env", "argv", "stream"}

    def test_taint_source_ground_truth_matches_both_oracles(self):
        from repro.fuzz.oracles import run_oracles

        rng = random.Random(11)
        for _ in range(12):
            for vulnerable in (True, False):
                program = generate_program(
                    rng, vulnerable, shape="taint-source"
                )
                obs = run_oracles(program.source, program.stdin)
                assert obs.dynamic.valid, obs.dynamic.reason
                assert obs.static.vulnerable == vulnerable
                assert obs.dynamic.vulnerable == vulnerable

    def test_default_draw_stays_classic(self):
        # The overflow-ground-truth families stay the default universe;
        # leak/dos-loop must be requested by name (their ground truth is
        # a leak/timeout, which score_detector would misread).
        rng = random.Random(5)
        for _ in range(40):
            program = generate_program(rng, vulnerable=True)
            assert program.shape in ("direct", "helper", "guarded", "tainted-array")

    def test_package_corpus_draws_stay_frozen(self):
        # The committed corpus/packages/ rendering pins the seed-2026
        # rng.choice draws; new shapes extend ALL_SHAPES, never the
        # package universe, or the committed corpus silently rewrites.
        from repro.workloads.generators import (
            generate_package_corpus,
        )

        for name, _, _ in generate_package_corpus(seed=2026, count=24):
            assert "taint-source" not in name

    def test_corpus_reproducible(self):
        a = generate_corpus(seed=5, count=10)
        b = generate_corpus(seed=5, count=10)
        assert [p.source for p in a] == [p.source for p in b]

    def test_corpus_mix(self):
        programs = generate_corpus(seed=6, count=40, vulnerable_ratio=0.5)
        vulnerable = sum(p.vulnerable for p in programs)
        assert 5 < vulnerable < 35


class TestScoring:
    def test_perfect_detector_scores_one(self):
        programs = generate_corpus(seed=7, count=20)
        score = score_detector(programs, lambda src: analyze_source(src).flagged)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_always_flagging_has_low_precision(self):
        programs = generate_corpus(seed=8, count=20)
        score = score_detector(programs, lambda src: True)
        assert score.recall == 1.0
        assert score.precision < 1.0
        assert score.false_positives > 0

    def test_never_flagging_has_low_recall(self):
        programs = generate_corpus(seed=9, count=20)
        score = score_detector(programs, lambda src: False)
        assert score.recall == 0.0
        assert score.false_negatives > 0

    def test_empty_batch_degenerate(self):
        score = score_detector([], lambda src: True)
        assert score.precision == 1.0 and score.recall == 1.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), vulnerable=st.booleans())
def test_property_detector_matches_ground_truth(seed, vulnerable):
    """For any generated program, the detector's verdict equals the
    generator's ground truth — the fuzz-grade version of E13."""
    program = generate_program(random.Random(seed), vulnerable)
    report = analyze_source(program.source)
    assert report.flagged == program.vulnerable, program.source


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_generated_sizes_match_layout_engine(seed):
    """The generator's size predictions agree with the real layout pass."""
    from repro.analysis import SymbolTable

    program = generate_program(random.Random(seed), vulnerable=True, shape="direct")
    symbols = SymbolTable(parse(program.source))
    assert symbols.sizeof_name("Small") == program.arena_size
    assert symbols.sizeof_name("Big") == program.placed_size

"""Tag-checked memory segments — GANDALF-style allocation colouring.

Every allocation the tracker sees is coloured with a small tag (4 bits,
values 1–15, the zero tag meaning "untagged", exactly the ARM MTE /
GANDALF economy).  Pointers inherit the colour of the allocation they
were derived from; a store or typed load whose target bytes carry a
different colour than the pointer's provenance faults.

Two checks implement that:

* **span uniformity** (raw store path): a bulk write must land entirely
  inside one coloured allocation or entirely in uncoloured memory — a
  ``strcpy`` that starts in allocation A and runs into allocation B
  crosses a tag boundary mid-copy and faults at the store.
* **provenance equality** (typed path): field/element accesses carry the
  referent object's base address, so ``st->courseid[i]`` faults when the
  computed element address lands in memory whose tag differs from
  ``st``'s — even though the store itself never *crosses* a boundary.

Honest limits are kept honest: tags are allocation-granular, so
intra-allocation overflows (the paper's E7 internal overflow) pass; the
4-bit space recycles, so the 16th concurrently-live allocation shares a
colour with the 1st and a lucky overflow between same-coloured
neighbours is invisible; and freed memory is simply uncoloured rather
than recoloured, so this models bounds isolation, not use-after-free
detection.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SimulatedProcessError
from ..memory.tracker import ArenaRecord
from ..runtime.machine import Machine

#: 4-bit tag space; 0 is reserved for untagged memory.
TAG_VALUES = 15


class TagMismatchFault(SimulatedProcessError):
    """A store or typed access hit memory of a different colour."""

    def __init__(
        self, address: int, size: int, expected_tag: int, found_tag: int, operation: str
    ) -> None:
        self.address = address
        self.size = size
        self.expected_tag = expected_tag
        self.found_tag = found_tag
        self.operation = operation
        super().__init__(
            f"tag mismatch: {operation} of {size}B at {address:#010x} "
            f"expected colour {expected_tag}, memory holds {found_tag}"
        )


@dataclass
class _TaggedRange:
    """One coloured allocation: [base, base+size) painted ``tag``."""

    base: int
    size: int
    tag: int

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class MemoryTagging:
    """Allocation-granular tag map plus its enforcement hooks."""

    machine: Machine
    checks: int = 0
    faults: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._ranges: dict[int, _TaggedRange] = {}
        self._bases: list[int] = []
        self._dirty = False
        self._next_tag = 0
        self._armed = False

    # -- colouring ----------------------------------------------------------

    def _paint(self, base: int, size: int) -> None:
        self._next_tag += 1
        tag = 1 + (self._next_tag - 1) % TAG_VALUES
        if base not in self._ranges:
            self._dirty = True
        self._ranges[base] = _TaggedRange(base=base, size=size, tag=tag)

    def _clear(self, base: int) -> None:
        if self._ranges.pop(base, None) is not None:
            self._dirty = True

    def _on_arena_event(self, event: str, record: ArenaRecord) -> None:
        if event == "record":
            # Colour follows the *allocation*, never the placement: a
            # placement-new reuses the arena's memory, so relabels keep
            # the existing colour (MTE retags on malloc/free, not casts).
            self._paint(record.address, record.true_size)
        elif event in ("forget", "freed"):
            self._clear(record.address)

    # -- lookup -------------------------------------------------------------

    def _reindex(self) -> None:
        self._bases = sorted(self._ranges)
        self._dirty = False

    def _range_containing(self, address: int) -> Optional[_TaggedRange]:
        if self._dirty:
            self._reindex()
        i = bisect_right(self._bases, address) - 1
        if i < 0:
            return None
        rng = self._ranges[self._bases[i]]
        if address < rng.end:
            return rng
        return None

    def tag_at(self, address: int) -> int:
        """The colour of one byte (0 = untagged)."""
        rng = self._range_containing(address)
        return rng.tag if rng is not None else 0

    @property
    def live_ranges(self) -> int:
        """Number of coloured allocations."""
        return len(self._ranges)

    # -- enforcement --------------------------------------------------------

    def _fail(
        self, address: int, size: int, expected: int, found: int, operation: str
    ) -> None:
        fault = TagMismatchFault(address, size, expected, found, operation)
        self.faults.append(fault)
        raise fault

    def _check_span(self, address: int, length: int, operation: str) -> None:
        """The span [address, address+length) must be uniformly coloured."""
        if self._dirty:
            self._reindex()
        rng = self._range_containing(address)
        if rng is not None:
            if address + length > rng.end:
                # Runs off the end of its allocation into whatever is next.
                self._fail(
                    address, length, rng.tag, self.tag_at(rng.end), operation
                )
            return
        # Starts in untagged memory: it must not run into a coloured range.
        i = bisect_left(self._bases, address)
        if i < len(self._bases) and self._bases[i] < address + length:
            crossed = self._ranges[self._bases[i]]
            self._fail(address, length, 0, crossed.tag, operation)

    def _on_access(self, address: int, data: bytes, is_write: bool) -> None:
        # Store-side checking only on the raw path: bulk loads (string
        # scans) legitimately sweep across segment boundaries; typed
        # loads are covered by the provenance check below.
        if not is_write:
            return
        self.checks += 1
        self._check_span(address, len(data), "write")

    def _on_typed_access(
        self, base: int, address: int, length: int, is_write: bool
    ) -> None:
        self.checks += 1
        expected = self.tag_at(base)
        found = self.tag_at(address)
        if expected != found:
            self._fail(
                address, length, expected, found, "write" if is_write else "read"
            )

    # -- lifecycle ----------------------------------------------------------

    def arm(self) -> None:
        """Colour existing allocations, subscribe, start enforcing."""
        if self._armed:
            return
        for record in self.machine.tracker.live_records:
            self._paint(record.address, record.true_size)
        self.machine.tracker.add_observer(self._on_arena_event)
        self.machine.space.add_access_hook(self._on_access)
        self.machine.space.add_typed_guard(self._on_typed_access)
        self._armed = True

    def disarm(self) -> None:
        """Stop enforcing and detach from the machine."""
        if not self._armed:
            return
        self.machine.tracker.remove_observer(self._on_arena_event)
        self.machine.space.remove_access_hook(self._on_access)
        self.machine.space.remove_typed_guard(self._on_typed_access)
        self._armed = False


def protect_machine(machine: Machine) -> MemoryTagging:
    """Attach an armed tag map to ``machine`` and return it."""
    tagging = MemoryTagging(machine)
    tagging.arm()
    machine.memory_tags = tagging  # type: ignore[attr-defined]
    return tagging

"""Greedy divergence-preserving reduction of a fuzz input.

Classic delta-debugging at statement/field granularity: repeatedly try
to delete one statement, one class field, one global, or trailing stdin
tokens, keeping any deletion under which ``predicate`` (usually "same
divergence fingerprint") still holds.  The loop is greedy and runs to a
fixpoint, so the result is 1-minimal with respect to the tried edits —
small enough to read in a triage report.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..analysis import ast_nodes as ast
from ..analysis import parse
from ..analysis.unparse import unparse_program
from ..errors import ParseError
from .mutator import transform
from .seeds import FuzzInput


def _without_statement(program: ast.Program, block_index: int, stmt_index: int):
    state = {"seen": 0}

    def visit(node):
        if not (isinstance(node, ast.Block) and node.statements):
            return None
        position = state["seen"]
        state["seen"] += 1
        if position != block_index:
            return None
        statements = node.statements
        return dataclasses.replace(
            node,
            statements=statements[:stmt_index] + statements[stmt_index + 1 :],
        )

    return transform(program, visit)


def _busy_blocks(program: ast.Program) -> list:
    found = []

    def visit(node):
        if isinstance(node, ast.Block) and node.statements:
            found.append(node)
        return None

    transform(program, visit)
    return found


def _candidates(program: ast.Program):
    """Every single-deletion candidate, deterministic order."""
    for block_index, block in enumerate(_busy_blocks(program)):
        for stmt_index in range(len(block.statements)):
            yield _without_statement(program, block_index, stmt_index)
    for class_index, cls in enumerate(program.classes):
        for field_index in range(len(cls.fields)):
            classes = list(program.classes)
            classes[class_index] = dataclasses.replace(
                cls,
                fields=cls.fields[:field_index] + cls.fields[field_index + 1 :],
            )
            yield dataclasses.replace(program, classes=tuple(classes))
        classes = list(program.classes)
        del classes[class_index]
        yield dataclasses.replace(program, classes=tuple(classes))
    for global_index in range(len(program.globals)):
        globals_ = list(program.globals)
        del globals_[global_index]
        yield dataclasses.replace(program, globals=tuple(globals_))


def minimize_input(
    fuzz_input: FuzzInput,
    predicate: Callable[[FuzzInput], bool],
    max_rounds: int = 12,
) -> FuzzInput:
    """Shrink ``fuzz_input`` while ``predicate`` keeps holding."""
    current = fuzz_input
    for _ in range(max_rounds):
        shrunk = _shrink_once(current, predicate)
        if shrunk is None:
            break
        current = shrunk
    # Trailing stdin tokens the divergence does not need.
    while current.stdin:
        candidate = dataclasses.replace(current, stdin=current.stdin[:-1])
        if not predicate(candidate):
            break
        current = candidate
    return current


def _shrink_once(current: FuzzInput, predicate) -> FuzzInput | None:
    """The first single deletion that preserves the divergence."""
    try:
        program = parse(current.source)
    except ParseError:
        return None
    for candidate_ast in _candidates(program):
        if candidate_ast is program:
            continue
        try:
            source = unparse_program(candidate_ast)
            parse(source)
        except (ParseError, ValueError):
            continue
        if source == current.source:
            continue
        candidate = dataclasses.replace(current, source=source)
        if predicate(candidate):
            return candidate
    return None

"""Tests for the command-line front ends."""

import pytest

from repro.cli import analyze_main, attacks_main


class TestSharedExitConvention:
    """Every front end exits 2 (EX_USAGE) on bad input."""

    @pytest.mark.parametrize(
        ("entry_point", "argv"),
        [
            ("repro.cli:attacks_main", ["--env", "no-such-env"]),
            ("repro.cli:analyze_main", ["/no/such/file.cpp"]),
            ("repro.cli:exec_main", ["/no/such/file.cpp"]),
            ("repro.cli:serve_main", ["--workers", "0"]),
            ("repro.cli:cluster_main", ["--shards", "0"]),
            ("repro.cli:fuzz_main", ["run", "--jobs", "-1"]),
            ("repro.cli:matrix_main", ["run", "--jobs", "-1"]),
            ("repro.cli:regress_main", ["list", "--store", "/no/such/store"]),
            ("repro.cli:score_main", ["rank", "/no/such/packages"]),
            ("repro.bench:bench_main", ["--benchmarks-dir", "/no/such/dir"]),
        ],
    )
    def test_bad_input_exits_2(self, entry_point, argv, capsys):
        import importlib

        module_name, function_name = entry_point.split(":")
        main = getattr(importlib.import_module(module_name), function_name)
        assert main(argv) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_every_project_script_is_covered(self):
        # The parametrized list above must track pyproject [project.scripts].
        from pathlib import Path

        pyproject = (
            Path(__file__).resolve().parent.parent / "pyproject.toml"
        ).read_text()
        scripts_section = pyproject.split("[project.scripts]")[1]
        scripts_section = scripts_section.split("\n[")[0]
        entry_points = {
            line.split("=")[1].strip().strip('"')
            for line in scripts_section.splitlines()
            if "=" in line
        }
        covered = {
            param[0]
            for mark in TestSharedExitConvention.test_bad_input_exits_2.pytestmark
            if mark.name == "parametrize"
            for param in mark.args[1]
        }
        assert entry_points == covered


class TestBenchDiff:
    """``repro-bench diff`` — CI's >10%-regression gate on two summaries."""

    @staticmethod
    def _summary(tmp_path, name, means, rounds=10):
        import json

        path = tmp_path / name
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "benchmarks": {
                        bench: {"mean_s": mean, "rounds": rounds}
                        for bench, mean in means.items()
                    },
                }
            )
        )
        return str(path)

    def test_clean_diff_exits_0(self, tmp_path, capsys):
        from repro.bench import bench_main

        base = self._summary(tmp_path, "BENCH_a.json", {"test_x": 2.0e-4})
        new = self._summary(tmp_path, "BENCH_b.json", {"test_x": 1.0e-4})
        assert bench_main(["diff", new, base]) == 0
        out = capsys.readouterr().out
        assert "2.00x  test_x" in out
        assert "geomean speedup: 2.000x" in out

    def test_regression_past_threshold_exits_1(self, tmp_path, capsys):
        from repro.bench import bench_main

        base = self._summary(tmp_path, "BENCH_a.json", {"test_x": 1.0e-4})
        new = self._summary(tmp_path, "BENCH_b.json", {"test_x": 1.2e-4})
        assert bench_main(["diff", new, base]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "FAIL" in captured.err
        # A wider tolerance lets the same pair through.
        assert bench_main(["diff", new, base, "--max-regression", "25"]) == 0

    def test_single_shot_benchmarks_are_not_gated(self, tmp_path):
        from repro.bench import bench_main

        base = self._summary(
            tmp_path, "BENCH_a.json", {"test_shape": 1.0e-4}, rounds=1
        )
        slower = self._summary(
            tmp_path, "BENCH_b.json", {"test_shape": 9.0e-4}, rounds=1
        )
        # No well-sampled overlap at all is a usage error, not a pass.
        assert bench_main(["diff", slower, base]) == 2

    def test_unreadable_summary_exits_2(self, tmp_path, capsys):
        from repro.bench import bench_main

        good = self._summary(tmp_path, "BENCH_a.json", {"test_x": 1.0e-4})
        assert bench_main(["diff", good, str(tmp_path / "missing.json")]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestAttacksCli:
    def test_list(self, capsys):
        assert attacks_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "data-bss-overflow" in out
        assert "unprotected" in out

    def test_single_attack(self, capsys):
        assert attacks_main(["--attack", "data-bss-overflow"]) == 0
        out = capsys.readouterr().out
        assert "SUCCEEDED" in out

    def test_single_attack_verbose(self, capsys):
        attacks_main(["--attack", "stack-local-overwrite", "--verbose"])
        out = capsys.readouterr().out
        assert "padding_above_stud" in out

    def test_attack_under_defense(self, capsys):
        assert (
            attacks_main(
                ["--attack", "overflow-via-construction", "--env", "checked-placement"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "DETECTED by bounds-check" in out

    def test_unknown_env_rejected(self, capsys):
        assert attacks_main(["--env", "fortress"]) == 2
        assert "unknown environment" in capsys.readouterr().err

    def test_unknown_attack_rejected(self, capsys):
        assert attacks_main(["--attack", "nope"]) == 2
        assert "no attack named" in capsys.readouterr().err


class TestAnalyzeCli:
    def test_corpus_default(self, capsys):
        assert analyze_main([]) == 0
        out = capsys.readouterr().out
        assert "PN-OVERSIZE" in out
        assert "listing11-data-bss" in out

    def test_legacy_comparison(self, capsys):
        analyze_main(["--legacy"])
        out = capsys.readouterr().out
        assert "legacy-strict" in out

    def test_file_argument(self, tmp_path, capsys):
        source = tmp_path / "vuln.cpp"
        source.write_text(
            "class A { public: double d; };\n"
            "class B : public A { public: int x[8]; };\n"
            "A arena;\n"
            "void f() { B *b = new (&arena) B(); }\n"
        )
        exit_code = analyze_main([str(source)])
        out = capsys.readouterr().out
        assert "PN-OVERSIZE" in out
        assert exit_code == 1  # findings on user files → nonzero

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        source = tmp_path / "fine.cpp"
        source.write_text("void f() { int x = 1; }\n")
        assert analyze_main([str(source)]) == 0

    def test_json_output_is_deterministic(self, capsys):
        import json

        analyze_main(["--json"])
        first = capsys.readouterr().out
        analyze_main(["--json"])
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first[: first.index("}\n{") + 1])
        assert list(document) == sorted(document)  # sorted keys

    def test_parallel_jobs_output_matches_sequential(self, capsys):
        assert analyze_main([]) == 0
        sequential = capsys.readouterr().out
        assert analyze_main(["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_parallel_json_matches_sequential(self, capsys):
        analyze_main(["--json"])
        sequential = capsys.readouterr().out
        analyze_main(["--json", "--jobs", "4"])
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_missing_file_exits_2(self, capsys):
        assert analyze_main(["/no/such/file.cpp"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_jobs_value_exits_2(self, capsys):
        assert analyze_main(["--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestExecCli:
    def test_missing_file_exits_2(self, capsys):
        from repro.cli import exec_main

        assert exec_main(["/no/such/file.cpp"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_args_exit_2(self, tmp_path, capsys):
        from repro.cli import exec_main

        source = tmp_path / "ok.cpp"
        source.write_text("int main(int a, char b) { return 0; }\n")
        assert exec_main([str(source), "--args", "1,zap"]) == 2
        assert "bad integer" in capsys.readouterr().err

    def test_runs_simple_program(self, tmp_path, capsys):
        from repro.cli import exec_main

        source = tmp_path / "ok.cpp"
        source.write_text("int main(int a, char b) { return 12; }\n")
        assert exec_main([str(source)]) == 0
        assert "returned 12" in capsys.readouterr().out


class TestServeCli:
    def test_bad_workers_exits_2(self, capsys):
        from repro.cli import serve_main

        assert serve_main(["--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_fault_plan_exits_2(self, capsys):
        from repro.cli import serve_main

        assert serve_main(["--fault-plan", "explode:everything"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_fault_plan_requires_thread_backend(self, capsys):
        from repro.cli import serve_main

        assert (
            serve_main(["--fault-plan", "crash", "--backend", "process"]) == 2
        )
        assert "thread backend" in capsys.readouterr().err

"""Record layout: turning a :class:`ClassDef` into offsets and sizes.

This is the simulated compiler's layout pass, following the Itanium C++
ABI in the respects the paper's attacks depend on:

* the vtable pointer is the **first entry** of a polymorphic object
  (Section 3.8.2: *"The C++ compiler adds a pointer to the virtual table
  in each instance as the first entry"*);
* a derived class shares the vptr of its primary (first, polymorphic)
  base; with multiple inheritance, non-primary polymorphic bases keep
  their own vptr, so *"there are more than one vtable pointers in a given
  instance"*;
* base subobjects come first, then the derived class's own members, each
  aligned naturally, with tail padding rounding the size up to the
  object's alignment.

The numbers this pass produces for the paper's classes are the ground
truth in DESIGN.md section 4 (``sizeof(Student) == 16``,
``sizeof(GradStudent) == 32``), and every attack offset derives from
them.

Deliberate simplification: no empty-base optimization (an empty base
occupies its 1 byte).  None of the paper's classes are empty, so this
does not affect any reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import LayoutError
from ..memory.alignment import align_up
from ..memory.encoding import POINTER_SIZE
from .classdef import ClassDef
from .types import CType


@dataclass(frozen=True)
class FieldSlot:
    """A field resolved to an absolute offset within the object."""

    name: str
    offset: int
    ctype: CType
    declaring_class: str

    @property
    def end(self) -> int:
        """One past the field's last byte."""
        return self.offset + self.ctype.size


@dataclass(frozen=True)
class RecordLayout:
    """The computed memory layout of one class."""

    class_def: ClassDef
    size: int
    alignment: int
    field_slots: tuple[FieldSlot, ...]
    base_offsets: tuple[tuple[str, int], ...]
    vptr_offsets: tuple[int, ...]

    @property
    def name(self) -> str:
        """The class name."""
        return self.class_def.name

    @property
    def has_vptr(self) -> bool:
        """True if the object carries at least one vtable pointer."""
        return bool(self.vptr_offsets)

    @property
    def primary_vptr_offset(self) -> int:
        """Offset of the main vptr (0 for polymorphic classes)."""
        if not self.vptr_offsets:
            raise LayoutError(f"class {self.name} is not polymorphic")
        return self.vptr_offsets[0]

    def slot(self, field_name: str) -> FieldSlot:
        """Look up a field (own or inherited) by name.

        When a derived class shadows a base field name, the most-derived
        declaration wins, matching C++ name lookup.
        """
        for field_slot in reversed(self.field_slots):
            if field_slot.name == field_name:
                return field_slot
        raise LayoutError(f"class {self.name} has no field '{field_name}'")

    def base_offset(self, base_name: str) -> int:
        """Offset of a (transitive) base subobject."""
        for name, offset in self.base_offsets:
            if name == base_name:
                return offset
        raise LayoutError(f"class {self.name} has no base '{base_name}'")

    def tail_padding(self) -> int:
        """Bytes between the last field's end and ``size``.

        Listing 15's alignment discussion is about exactly these bytes:
        the first overflowing member can land in tail padding before the
        next variable is reached.
        """
        if not self.field_slots:
            return self.size - (POINTER_SIZE if self.has_vptr else 0)
        last_end = max(slot.end for slot in self.field_slots)
        return self.size - last_end

    def describe(self) -> str:
        """Render the layout like ``clang -fdump-record-layouts``."""
        lines = [f"*** layout of {self.name} (size={self.size}, align={self.alignment})"]
        for offset in self.vptr_offsets:
            lines.append(f"  {offset:4d} | vptr")
        for field_slot in self.field_slots:
            lines.append(
                f"  {field_slot.offset:4d} | {field_slot.ctype} "
                f"{field_slot.declaring_class}::{field_slot.name}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ClassType(CType):
    """A class used as a *member type* (e.g. Listing 10's
    ``Student stud1, stud2;`` inside ``MobilePlayer``).

    Size and alignment are computed from the class's record layout at
    construction time via :func:`class_type`.  Values are raw bytes —
    member objects are manipulated through
    :meth:`~repro.cxx.object_model.Instance.nested`, not decode().
    """

    class_def: "ClassDef" = None  # type: ignore[assignment]

    def encode(self, value) -> bytes:
        data = bytes(value)
        if len(data) != self.size:
            raise LayoutError(
                f"raw init of {self.name} needs {self.size} bytes, got {len(data)}"
            )
        return data

    def decode(self, data: bytes):
        return bytes(data)


def class_type(class_def: ClassDef, engine: "LayoutEngine" = None) -> ClassType:
    """Build a member-type adapter for ``class_def``.

    Layout is deterministic, so any engine gives the same numbers; a
    throwaway one is used when none is supplied.
    """
    layout = (engine or LayoutEngine()).layout_of(class_def)
    return ClassType(
        name=class_def.name,
        size=layout.size,
        alignment=layout.alignment,
        class_def=class_def,
    )


class LayoutEngine:
    """Computes and caches :class:`RecordLayout` objects."""

    def __init__(self) -> None:
        self._cache: dict[str, RecordLayout] = {}

    def layout_of(self, class_def: ClassDef) -> RecordLayout:
        """The layout of ``class_def`` (memoized by class name)."""
        cached = self._cache.get(class_def.name)
        if cached is not None and cached.class_def is class_def:
            return cached
        computed = self._compute(class_def)
        self._cache[class_def.name] = computed
        return computed

    def _compute(self, class_def: ClassDef) -> RecordLayout:
        cursor = 0
        alignment = 1
        field_slots: list[FieldSlot] = []
        base_offsets: list[tuple[str, int]] = []
        vptr_offsets: list[int] = []

        polymorphic = class_def.is_polymorphic()
        primary_base: Optional[ClassDef] = None
        if class_def.bases and class_def.bases[0].is_polymorphic():
            primary_base = class_def.bases[0]

        if polymorphic and primary_base is None:
            # This class introduces the vptr itself, as the first entry.
            vptr_offsets.append(0)
            cursor = POINTER_SIZE
            alignment = max(alignment, POINTER_SIZE)

        for base in class_def.bases:
            base_layout = self.layout_of(base)
            offset = align_up(cursor, base_layout.alignment)
            base_offsets.append((base.name, offset))
            # Transitive bases become visible at shifted offsets.
            for inner_name, inner_offset in base_layout.base_offsets:
                base_offsets.append((inner_name, offset + inner_offset))
            for slot in base_layout.field_slots:
                field_slots.append(
                    FieldSlot(
                        name=slot.name,
                        offset=offset + slot.offset,
                        ctype=slot.ctype,
                        declaring_class=slot.declaring_class,
                    )
                )
            for vptr in base_layout.vptr_offsets:
                vptr_offsets.append(offset + vptr)
            cursor = offset + base_layout.size
            alignment = max(alignment, base_layout.alignment)

        for member in class_def.fields:
            offset = align_up(cursor, member.ctype.alignment)
            field_slots.append(
                FieldSlot(
                    name=member.name,
                    offset=offset,
                    ctype=member.ctype,
                    declaring_class=class_def.name,
                )
            )
            cursor = offset + member.ctype.size
            alignment = max(alignment, member.ctype.alignment)

        size = align_up(max(cursor, 1), alignment)
        return RecordLayout(
            class_def=class_def,
            size=size,
            alignment=alignment,
            field_slots=tuple(field_slots),
            base_offsets=tuple(base_offsets),
            vptr_offsets=tuple(sorted(set(vptr_offsets))),
        )

    def sizeof(self, class_def: ClassDef) -> int:
        """C++ ``sizeof`` for a class type."""
        return self.layout_of(class_def).size

    def alignof(self, class_def: ClassDef) -> int:
        """C++ ``alignof`` for a class type."""
        return self.layout_of(class_def).alignment

// package: pkg-19-leak
// imports: pkg-02-leak, pkg-13-guarded
char pool[64];
void run() {
  readFile("/etc/passwd", pool, 64);
  char *userdata = new (pool) char[64];
  store(userdata);
}

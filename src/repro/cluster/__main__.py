"""``python -m repro.cluster`` — run the sharded front-end."""

import sys

from ..cli import cluster_main

if __name__ == "__main__":
    sys.exit(cluster_main())

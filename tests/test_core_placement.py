"""Tests for placement new (unchecked), checked placement, delete, sanitize."""

import pytest

from repro.core import (
    ArenaOwner,
    checked_placement_new,
    checked_placement_new_array,
    leaked_bytes,
    new_object,
    place_or_heap_allocate,
    placement_delete,
    placement_new,
    placement_new_array,
    placement_new_in_pool,
    residual_ranges,
    sanitize,
)
from repro.cxx import CHAR, INT
from repro.errors import ApiMisuseError, BoundsCheckViolation
from repro.memory import CheckedMemoryPool, MemoryPool, SegmentKind


class TestPlacementNew:
    def test_places_at_given_address(self, machine, student_classes):
        student, _ = student_classes
        arena = machine.static_object(student, "arena")
        placed = placement_new(machine, arena, student)
        assert placed.address == arena.address

    def test_raw_address_target(self, machine, student_classes):
        student, _ = student_classes
        base = machine.space.segment(SegmentKind.BSS).base + 128
        placed = placement_new(machine, base, student)
        assert placed.address == base

    def test_null_address_rejected(self, machine, student_classes):
        student, _ = student_classes
        with pytest.raises(ApiMisuseError):
            placement_new(machine, 0, student)

    def test_no_bounds_check_larger_object_succeeds(
        self, machine, student_classes
    ):
        # The vulnerability itself: 32 bytes into a 16-byte arena.
        student, grad = student_classes
        arena = machine.static_object(student, "arena")
        placed = placement_new(machine, arena, grad)
        assert placed.size == 32
        assert placed.size > arena.size

    def test_overflow_recorded_in_audit_log(self, machine, student_classes):
        student, grad = student_classes
        arena = machine.static_object(student, "arena")
        placement_new(machine, arena, grad)
        overflows = machine.placement_log.overflowing()
        assert len(overflows) == 1
        assert overflows[0].type_name == "GradStudent"
        assert overflows[0].arena_size == 16 and overflows[0].size == 32

    def test_raw_address_has_unknown_arena(self, machine, student_classes):
        student, _ = student_classes
        base = machine.space.segment(SegmentKind.BSS).base + 128
        placement_new(machine, base, student)
        record = machine.placement_log.records[-1]
        assert record.arena_size is None
        assert record.overflows_arena is None

    def test_no_type_check_incompatible_types(self, machine, student_classes):
        # Section 2.5 item 3: placing T2 over T1 succeeds regardless.
        student, _ = student_classes
        buf = machine.static_array(CHAR, 16, "buf")
        placed = placement_new(machine, buf, student)
        assert placed.address == buf.address

    def test_misalignment_reported_not_blocked(self, machine, student_classes):
        student, _ = student_classes
        base = machine.space.segment(SegmentKind.BSS).base + 3
        placement_new(machine, base, student)
        assert machine.placement_log.records[-1].misaligned

    def test_constructor_runs_at_target(self, machine, student_classes):
        student, _ = student_classes
        arena = machine.static_object(student, "arena")
        placed = placement_new(machine, arena, student, 3.3, 2011, 1)
        assert arena.get("gpa") == 3.3
        assert placed.get("year") == 2011

    def test_relabels_tracked_arena(self, machine, student_classes):
        student, grad = student_classes
        grad_obj = new_object(machine, grad)
        placement_new(machine, grad_obj.address, student)
        record = machine.tracker.lookup(grad_obj.address)
        assert record.believed_size == 16
        assert record.true_size == 32


class TestPlacementNewArray:
    def test_array_over_buffer(self, machine):
        buf = machine.static_array(CHAR, 32, "uname_buf")
        view = placement_new_array(machine, buf, CHAR, 16)
        assert view.address == buf.address
        assert view.declared_count == 16

    def test_no_zeroing_previous_contents_visible(self, machine):
        # Section 2.5 item on leaks: new[] placement does not sanitize.
        buf = machine.static_array(CHAR, 32, "buf")
        machine.space.write(buf.address, b"SECRET--")
        view = placement_new_array(machine, buf, CHAR, 8)
        assert machine.space.read(view.address, 8) == b"SECRET--"

    def test_oversize_array_allowed(self, machine):
        buf = machine.static_array(CHAR, 8, "small")
        view = placement_new_array(machine, buf, CHAR, 64)
        assert view.size == 64
        assert machine.placement_log.overflowing()

    def test_bad_count_rejected(self, machine):
        buf = machine.static_array(CHAR, 8, "b")
        with pytest.raises(ApiMisuseError):
            placement_new_array(machine, buf, CHAR, 0)

    def test_int_array_placement(self, machine):
        buf = machine.static_array(INT, 8, "ints")
        view = placement_new_array(machine, buf, INT, 4)
        view.set(0, 42)
        assert machine.space.read_int(buf.address) == 42


class TestPlacementInPool:
    def test_pool_suballocation(self, machine, student_classes):
        student, _ = student_classes
        base = machine.space.segment(SegmentKind.HEAP).base + 64
        machine.space  # pool over raw heap bytes
        pool = MemoryPool(machine.space, base, 256, name="app-pool")
        first = placement_new_in_pool(machine, pool, student)
        second = placement_new_in_pool(machine, pool, student)
        assert second.address >= first.address + 16

    def test_checked_pool_blocks_exhaustion(self, machine, student_classes):
        student, _ = student_classes
        base = machine.space.segment(SegmentKind.HEAP).base + 64
        pool = CheckedMemoryPool(machine.space, base, 24, name="tight")
        placement_new_in_pool(machine, pool, student)
        with pytest.raises(BoundsCheckViolation):
            placement_new_in_pool(machine, pool, student)


class TestCheckedPlacement:
    def test_fits_passes_through(self, machine, student_classes):
        student, grad = student_classes
        grad_arena = new_object(machine, grad)
        placed = checked_placement_new(machine, grad_arena, student)
        assert placed.address == grad_arena.address

    def test_oversize_rejected(self, machine, student_classes):
        student, grad = student_classes
        arena = machine.static_object(student, "arena")
        with pytest.raises(BoundsCheckViolation):
            checked_placement_new(machine, arena, grad)

    def test_raw_address_requires_size(self, machine, student_classes):
        student, _ = student_classes
        base = machine.space.segment(SegmentKind.BSS).base + 128
        with pytest.raises(ApiMisuseError):
            checked_placement_new(machine, base, student)
        placed = checked_placement_new(machine, base, student, arena_size=16)
        assert placed.address == base

    def test_misalignment_rejected(self, machine, student_classes):
        student, _ = student_classes
        base = machine.space.segment(SegmentKind.BSS).base + 4
        with pytest.raises(BoundsCheckViolation):
            checked_placement_new(machine, base, student, arena_size=64)

    def test_misalignment_opt_out(self, machine, student_classes):
        student, _ = student_classes
        base = machine.space.segment(SegmentKind.BSS).base + 4
        placed = checked_placement_new(
            machine, base, student, arena_size=64, enforce_alignment=False
        )
        assert placed.address == base

    def test_checked_array(self, machine):
        buf = machine.static_array(CHAR, 16, "buf")
        view = checked_placement_new_array(machine, buf, CHAR, 16)
        assert view.size == 16
        with pytest.raises(BoundsCheckViolation):
            checked_placement_new_array(machine, buf, CHAR, 17)

    def test_fallback_allocates_on_heap(self, machine, student_classes):
        student, grad = student_classes
        arena = machine.static_object(student, "arena")
        placed = place_or_heap_allocate(machine, arena, grad)
        assert placed.address != arena.address
        assert machine.space.segment(SegmentKind.HEAP).contains(placed.address)

    def test_fallback_releases_heap_arena_when_asked(
        self, machine, student_classes
    ):
        student, grad = student_classes
        small = new_object(machine, student)
        freed_before = machine.heap.free_count
        place_or_heap_allocate(machine, small, grad, release_arena=True)
        assert machine.heap.free_count == freed_before + 1


class TestPlacementDelete:
    def test_scrubs_extent(self, machine, student_classes):
        student, _ = student_classes
        arena = new_object(machine, student, 3.9, 2008, 2)
        placement_delete(machine, arena)
        assert machine.space.read(arena.address, 16) == b"\x00" * 16

    def test_runs_destructor(self, machine, student_classes):
        student, _ = student_classes
        arena = new_object(machine, student)
        calls = []
        placement_delete(machine, arena, destructor=lambda c, i: calls.append(i))
        assert calls == [arena]

    def test_arena_owner_no_leak(self, machine, student_classes):
        student, grad = student_classes
        with ArenaOwner(machine, machine.sizeof(grad), label="arena") as owner:
            placement_new(machine, owner.address, student)
        assert machine.tracker.leaked_bytes == 0
        assert owner.released

    def test_arena_owner_address_after_release(self, machine):
        owner = ArenaOwner(machine, 32)
        owner.release()
        with pytest.raises(ApiMisuseError):
            owner.address
        owner.release()  # idempotent


class TestSanitize:
    def test_full_sanitize(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        machine.space.write(base, b"secret")
        report = sanitize(machine.space, base, 6)
        assert machine.space.read(base, 6) == b"\x00" * 6
        assert report.end == base + 6

    def test_residual_ranges(self):
        gaps = residual_ranges(100, 32, occupied=[(100, 8), (116, 4)])
        assert gaps == [(108, 8), (120, 12)]

    def test_residual_ranges_full_coverage(self):
        assert residual_ranges(100, 16, occupied=[(100, 16)]) == []

    def test_residual_ranges_ignores_outside(self):
        gaps = residual_ranges(100, 16, occupied=[(0, 50), (200, 8)])
        assert gaps == [(100, 16)]

    def test_leaked_bytes_counts_residue(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        secret = b"ABCDEFGHIJKLMNOP"
        machine.space.write(base, secret)
        # New occupant covers only the first 8 bytes.
        count = leaked_bytes(
            machine.space, base, 16, occupied=[(base, 8)], secret=secret
        )
        assert count == 8

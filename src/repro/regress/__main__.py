"""``python -m repro.regress`` — the repro-regress front end."""

import sys

from ..cli import regress_main

if __name__ == "__main__":
    sys.exit(regress_main())

"""E11 — denial of service through overflow (§4.4).

Claims: inflating the overwritten loop bound blows up service time
(modelled as a step budget); zeroing it bypasses the validation loop;
allocating inside the loop exhausts memory.  The sweep shows the
response-step curve versus the injected bound.
"""

from repro.attacks import (
    UNPROTECTED,
    AuthBypassAttack,
    DosLoopAttack,
    ResourceExhaustionAttack,
)

from conftest import print_table


def run_experiment():
    budget = 10_000
    rows = []
    series = []
    for injected in (5, 100, 1_000, 10_000, 1_000_000):
        result = DosLoopAttack(injected_n=injected, budget=budget).run(UNPROTECTED)
        series.append((injected, result.detail["steps_executed"], result.succeeded))
        rows.append(
            (
                injected,
                result.detail["steps_executed"],
                result.detail["outcome"],
            )
        )
    print_table(
        f"E11a: service steps vs injected loop bound (budget {budget})",
        ["injected n", "steps executed", "outcome"],
        rows,
    )
    bypass = AuthBypassAttack().run(UNPROTECTED)
    oom = ResourceExhaustionAttack().run(UNPROTECTED)
    print_table(
        "E11b: the other two §4.4 payoffs",
        ["attack", "outcome"],
        [
            ("auth bypass (n := 0)", f"{bypass.detail['checks_run']}/{bypass.detail['checks_expected']} checks ran"),
            ("resource exhaustion", f"OOM after {oom.detail['allocations_before_oom']} allocations"),
        ],
    )
    return series, bypass, oom


def test_e11_shape(benchmark):
    series, bypass, oom = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    served = [row for row in series if not row[2]]
    timed_out = [row for row in series if row[2]]
    # Crossover: bounds within budget are served; beyond it, timeout.
    assert all(bound <= 10_000 for bound, _, _ in served)
    assert all(bound > 10_000 for bound, _, _ in timed_out)
    assert timed_out, "the big bound must blow the budget"
    assert bypass.succeeded and bypass.detail["checks_run"] == 0
    assert oom.succeeded

"""Byte-granular taint tracking.

The paper's threat model is *attacker-influenced data reaching a
placement site*: ``cin >>`` input, serialized/remote objects (Section
3.2), values flowing indirectly through intermediate objects (Section
3.3).  The taint engine labels simulated memory bytes with their origin
so scenarios — and the dynamic half of the detector — can prove that a
corrupted return address or size variable is in fact attacker-derived.
"""

from .engine import TaintEngine, TaintLabel, TaintedValue

__all__ = ["TaintEngine", "TaintLabel", "TaintedValue"]

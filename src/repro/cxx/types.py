"""The simulated C++ scalar, pointer and array types.

Each :class:`CType` knows its size, natural alignment and byte encoding
on the 32-bit little-endian target.  Class types are described separately
by :class:`~repro.cxx.classdef.ClassDef` plus a computed
:class:`~repro.cxx.layout.RecordLayout`; this module covers everything
below them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ApiMisuseError
from ..memory import encoding


@dataclass(frozen=True)
class CType:
    """Base class for value types in the simulated language."""

    name: str
    size: int
    alignment: int

    def encode(self, value: Any) -> bytes:
        """Turn a Python value into this type's byte representation."""
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        """Turn bytes back into a Python value."""
        raise NotImplementedError

    def zero(self) -> bytes:
        """The all-zero (default-initialized) representation."""
        return b"\x00" * self.size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class IntType(CType):
    """A fixed-width two's-complement integer."""

    signed: bool = True

    def encode(self, value: Any) -> bytes:
        return encoding.encode_int(int(value), self.size, signed=self.signed)

    def decode(self, data: bytes) -> int:
        return encoding.decode_int(data, signed=self.signed)


@dataclass(frozen=True)
class CharType(CType):
    """One byte; accepts single-character strings or small ints."""

    def encode(self, value: Any) -> bytes:
        if isinstance(value, str):
            if len(value) != 1:
                raise ApiMisuseError(f"char expects one character, got {value!r}")
            return value.encode("latin-1")
        return encoding.encode_int(int(value), 1, signed=False)

    def decode(self, data: bytes) -> str:
        return bytes(data[:1]).decode("latin-1")


@dataclass(frozen=True)
class BoolType(CType):
    """C++ bool: one byte, nonzero is true."""

    def encode(self, value: Any) -> bytes:
        return b"\x01" if value else b"\x00"

    def decode(self, data: bytes) -> bool:
        return data[0] != 0


@dataclass(frozen=True)
class DoubleType(CType):
    """IEEE-754 binary64."""

    def encode(self, value: Any) -> bytes:
        return encoding.encode_double(float(value))

    def decode(self, data: bytes) -> float:
        return encoding.decode_double(data)


@dataclass(frozen=True)
class FloatType(CType):
    """IEEE-754 binary32."""

    def encode(self, value: Any) -> bytes:
        return encoding.encode_float(float(value))

    def decode(self, data: bytes) -> float:
        return encoding.decode_float(data)


@dataclass(frozen=True)
class PointerType(CType):
    """A 32-bit pointer; ``pointee_name`` is informational only."""

    pointee_name: str = "void"

    def encode(self, value: Any) -> bytes:
        return encoding.encode_pointer(int(value))

    def decode(self, data: bytes) -> int:
        return encoding.decode_pointer(data)


@dataclass(frozen=True)
class ArrayType(CType):
    """A fixed-length array of a scalar element type.

    ``size`` and ``alignment`` are derived; construct via
    :func:`array_of` rather than directly.
    """

    element: CType = None  # type: ignore[assignment]
    count: int = 0

    def encode(self, value: Any) -> bytes:
        items = list(value)
        if len(items) > self.count:
            raise ApiMisuseError(
                f"{self.name} holds {self.count} elements, got {len(items)}"
            )
        data = b"".join(self.element.encode(item) for item in items)
        return data + b"\x00" * (self.size - len(data))

    def decode(self, data: bytes) -> list:
        step = self.element.size
        return [
            self.element.decode(data[i * step : (i + 1) * step])
            for i in range(self.count)
        ]


def array_of(element: CType, count: int) -> ArrayType:
    """Build ``element[count]`` with C array size/alignment rules."""
    if count <= 0:
        raise ApiMisuseError(f"array length must be positive, got {count}")
    return ArrayType(
        name=f"{element.name}[{count}]",
        size=element.size * count,
        alignment=element.alignment,
        element=element,
        count=count,
    )


# Canonical instances for the ILP32 target the paper assumes.
CHAR = CharType("char", encoding.CHAR_SIZE, 1)
BOOL = BoolType("bool", encoding.BOOL_SIZE, 1)
SHORT = IntType("short", encoding.SHORT_SIZE, 2, signed=True)
INT = IntType("int", encoding.INT_SIZE, 4, signed=True)
UINT = IntType("unsigned int", encoding.INT_SIZE, 4, signed=False)
LONG_LONG = IntType("long long", encoding.LONG_LONG_SIZE, 8, signed=True)
FLOAT = FloatType("float", encoding.FLOAT_SIZE, 4)
DOUBLE = DoubleType("double", encoding.DOUBLE_SIZE, encoding.DOUBLE_ALIGN)
VOID_PTR = PointerType("void*", encoding.POINTER_SIZE, 4, pointee_name="void")
CHAR_PTR = PointerType("char*", encoding.POINTER_SIZE, 4, pointee_name="char")
FUNC_PTR = PointerType("(*fn)()", encoding.POINTER_SIZE, 4, pointee_name="function")

_BY_NAME = {
    t.name: t
    for t in (CHAR, BOOL, SHORT, INT, UINT, LONG_LONG, FLOAT, DOUBLE, VOID_PTR, CHAR_PTR)
}


def scalar_by_name(name: str) -> CType:
    """Look up a canonical scalar type by its C spelling."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ApiMisuseError(f"unknown scalar type '{name}'") from None

// package: pkg-10-tainted-array
// imports: pkg-01-leak, pkg-03-direct, pkg-07-leak
char pool[256];
void run() {
  char *buf = new (pool) char[73];
}

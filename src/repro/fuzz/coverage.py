"""Coverage feedback: which oracle behaviors has the campaign seen?

Coverage is deliberately coarse — the union of detector rule ids fired
and simulator event kinds observed.  An input earns a place in the live
corpus only when it lights up a key nobody has hit before, which keeps
the corpus small and behaviorally diverse without any real
instrumentation cost.
"""

from __future__ import annotations

from typing import Iterable

from .oracles import Observation


def coverage_keys(observation: Observation) -> frozenset:
    """The coverage keys one observation contributes."""
    keys = {f"rule:{rule}" for rule in observation.static.rules}
    if observation.valid:
        keys.update(f"event:{kind}" for kind in observation.dynamic.events)
    return frozenset(keys)


class CoverageMap:
    """A grow-only set of coverage keys with deterministic reporting."""

    def __init__(self, keys: Iterable[str] = ()) -> None:
        self._keys: set = set(keys)

    def observe(self, keys: Iterable[str]) -> tuple:
        """Add ``keys``; the sorted tuple of genuinely new ones."""
        fresh = sorted(set(keys) - self._keys)
        self._keys.update(fresh)
        return tuple(fresh)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def sorted_keys(self) -> tuple:
        return tuple(sorted(self._keys))

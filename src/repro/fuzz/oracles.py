"""The two oracles the differential fuzzer plays against each other.

The *static* oracle is the placement-new detector: a source file is
vulnerable if any finding of WARNING severity or above fires.  The
*dynamic* oracle executes the same source on a fresh simulated machine
(scripted attacker stdin, the Listing 21 password file registered, a
:class:`~repro.memory.events.MemoryEventTap` attached, deterministic
canaries) and distills the run into a bounded set of event kinds —
placement overflows, faults, canary clobbers, vtable-slot overwrites,
info leaks, control-flow hijacks.

A divergence between the two verdicts is the fuzzer's whole signal;
runs the harness cannot judge (parse errors, unsupported constructs,
stdin exhaustion) are *invalid*, never divergent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..analysis import analyze_source, parse
from ..analysis.reports import Severity
from ..errors import (
    ParseError,
    SegmentationFault,
    SimulatedProcessError,
    SimulatedTimeout,
    StackSmashingDetected,
)
from ..memory import MemoryEventTap
from ..runtime import CanaryPolicy, Machine, MachineConfig, password_file

#: Step budget for one fuzzed execution — small enough that the §4.4
#: DoS family times out quickly, large enough for every honest seed.
DEFAULT_STEP_BUDGET = 50_000

#: Scripted attacker stdin used when an input carries none of its own:
#: a mix of huge counts (overflow/DoS triggers), plausible sizes, and
#: printable bytes, repeated so multi-read programs don't starve.
DEFAULT_STDIN = (9_000_001, 4096, 257, 65, 7, 3) * 2

#: Event kinds that make the dynamic verdict "vulnerable".  Bookkeeping
#: kinds (``write:<segment>``, ``placement-fit``) are coverage-only.
VULNERABLE_EVENTS = frozenset(
    {
        "placement-overflow",
        "segment-faulted",
        "canary-clobbered",
        "vtable-slot-overwritten",
        "leak-detected",
        "dos-timeout",
        "hijack",
    }
)


@dataclass(frozen=True)
class StaticVerdict:
    """What the detector said about one source."""

    rules: tuple = ()
    flagged: bool = False
    error_rules: tuple = ()  # the subset that fired at ERROR severity

    @property
    def vulnerable(self) -> bool:
        return self.flagged


@dataclass(frozen=True)
class DynamicVerdict:
    """What one simulated execution observed."""

    events: tuple = ()
    valid: bool = True
    reason: str = ""  # why the run could not be judged, when invalid
    fault: str = ""  # exception class name when the process died
    #: ``both``-engine mode: how the bytecode VM's run disagreed with
    #: the interpreter's ("" = agreed).  Advisory — never part of the
    #: events tuple, so fingerprints and coverage keys are engine-free.
    engine_drift: str = ""
    #: Why the bytecode engine did not run this source, when it didn't
    #: ("fallback:unsupported", "compile-error:<hash>").
    engine_note: str = ""

    @property
    def vulnerable(self) -> bool:
        return any(event in VULNERABLE_EVENTS for event in self.events)


@dataclass(frozen=True)
class Observation:
    """One input, both verdicts."""

    static: StaticVerdict
    dynamic: DynamicVerdict
    entry: str = ""

    @property
    def valid(self) -> bool:
        return self.dynamic.valid

    @property
    def divergence_kind(self) -> Optional[str]:
        """"static-only", "dynamic-only", or None when the oracles agree
        (or the run cannot be judged)."""
        if not self.valid:
            return None
        if self.static.vulnerable and not self.dynamic.vulnerable:
            return "static-only"
        if self.dynamic.vulnerable and not self.static.vulnerable:
            return "dynamic-only"
        return None


@dataclass(frozen=True)
class OracleConfig:
    """Knobs shared by every execution in one campaign."""

    step_budget: int = DEFAULT_STEP_BUDGET
    canary: bool = True  # deterministic (seeded) StackGuard canaries
    stdin: tuple = DEFAULT_STDIN
    #: Execution engine: "ast" (the interpreter), "bytecode" (the
    #: compiled VM, falling back per-program when a source cannot be
    #: compiled), or "both" (interpreter verdict is authoritative; the
    #: VM runs as a shadow and any disagreement is reported as
    #: ``engine_drift`` — a free differential oracle over the VM).
    engine: str = "ast"


def static_verdict(source: str) -> Optional[StaticVerdict]:
    """Run the detector; ``None`` when the source does not parse."""
    try:
        report = analyze_source(source)
    except ParseError:
        return None
    errors = tuple(
        sorted(
            {f.rule for f in report.findings if f.severity >= Severity.ERROR}
        )
    )
    return StaticVerdict(
        rules=tuple(sorted(report.rules_fired())),
        flagged=report.flagged,
        error_rules=errors,
    )


def _entry_plan(source: str):
    """Pick the entry function and synthesize its arguments.

    Parameterless functions win (``run`` first, then ``main``, then
    declaration order); otherwise the first all-scalar signature gets
    deterministic attacker-ish arguments.  Returns ``None`` when no
    function is runnable without fabricating object graphs.
    """
    program = parse(source)
    functions = list(program.functions)
    if not functions:
        return None
    parameterless = [f for f in functions if not f.params]
    parameterless.sort(
        key=lambda f: (f.name != "run", f.name != "main")
    )
    if parameterless:
        entry = parameterless[0]
        return entry.name, (0, 0) if entry.name == "main" else ()
    scalar_args = {"int": 7, "short": 7, "char": 65, "bool": 1, "double": 4.0, "float": 4.0}
    for function in functions:
        args = []
        for param in function.params:
            if param.type.pointer_depth == 1 and param.type.name == "char":
                args.append("attacker")
            elif param.type.pointer_depth == 0 and param.type.name in scalar_args:
                args.append(scalar_args[param.type.name])
            else:
                args = None
                break
        if args is not None:
            return function.name, tuple(args)
    return None


#: 8-byte probes sampled across the registered secret file; a stored
#: payload that reproduces any of them has leaked real secret content
#: (nonzero-but-constant bytes, e.g. from ``memset(p, 64, n)``, do not).
_SECRET = password_file().content
_SECRET_PROBES = tuple(
    _SECRET[offset : offset + 8] for offset in range(0, len(_SECRET) - 8, 8)
)


def _secret_leaked(stored) -> bool:
    """Did any ``store()``-ed payload carry recognizable secret bytes?"""
    for _, data in stored:
        blob = bytes(data)
        if any(probe in blob for probe in _SECRET_PROBES):
            return True
    return False


def _observe_once(
    source: str, entry: str, args: tuple, stdin: tuple, config: OracleConfig,
    compiled=None,
) -> DynamicVerdict:
    """One execution on one engine, distilled into a verdict.

    ``compiled`` non-None runs the bytecode VM; None runs the AST
    interpreter.  Everything else — machine setup, event taps, the
    verdict distillation — is identical, which is what makes the
    ``both``-mode comparison meaningful.
    """
    from ..execution import run_source

    machine = Machine(
        MachineConfig(
            canary_policy=CanaryPolicy.RANDOM if config.canary else CanaryPolicy.NONE
        )
    )
    machine.files.add(password_file())
    tap = MemoryEventTap(machine.space)
    machine.event_tap = tap
    machine.space.add_access_hook(tap)

    events: set = set()
    fault = ""
    executor = None
    try:
        if compiled is not None:
            from ..execution.vm import BytecodeVM

            executor = BytecodeVM(
                compiled, machine=machine, step_budget=config.step_budget
            )
            feed = tuple(stdin) or config.stdin
            if feed:
                machine.stdin.feed(*feed)
            outcome = executor.run(entry, *args)
        else:
            executor, outcome = run_source(
                source,
                entry=entry,
                args=args,
                machine=machine,
                stdin=tuple(stdin) or config.stdin,
                step_budget=config.step_budget,
            )
        if outcome.frame_exit is not None and outcome.frame_exit.hijacked:
            events.add("hijack")
    except SimulatedProcessError as error:
        fault = type(error).__name__
        events.add(f"fault:{fault}")
        if isinstance(error, SegmentationFault):
            events.add("segment-faulted")
        elif isinstance(error, StackSmashingDetected):
            events.add("canary-clobbered")
        elif isinstance(error, SimulatedTimeout):
            events.add("dos-timeout")
    except Exception as error:  # ApiMisuse, missing stdin, bad entry...
        return DynamicVerdict(
            valid=False, reason=f"{type(error).__name__}: {error}"
        )

    for record in machine.placement_log.records:
        events.add(
            "placement-overflow" if record.overflows_arena else "placement-fit"
        )
    if executor is not None and _secret_leaked(executor.stored):
        events.add("leak-detected")
    events.update(tap.kinds)
    return DynamicVerdict(events=tuple(sorted(events)), fault=fault)


def _engine_drift(primary: DynamicVerdict, shadow: DynamicVerdict) -> str:
    """How the VM's run disagreed with the interpreter's ("" = agreed).

    Two invalid runs always agree: the reason strings may word the same
    failure differently, and an unjudgeable run carries no verdict to
    drift from.
    """
    if not primary.valid and not shadow.valid:
        return ""
    if primary.valid != shadow.valid:
        return f"valid:ast={primary.valid}|bytecode={shadow.valid}"
    details = []
    if primary.events != shadow.events:
        details.append(
            f"events:ast={','.join(primary.events) or '-'}"
            f"|bytecode={','.join(shadow.events) or '-'}"
        )
    if primary.fault != shadow.fault:
        details.append(
            f"fault:ast={primary.fault or '-'}|bytecode={shadow.fault or '-'}"
        )
    return "; ".join(details)


def dynamic_verdict(
    source: str, stdin: tuple = (), config: OracleConfig = OracleConfig()
) -> tuple:
    """Execute ``source`` and distill the run into a verdict.

    Returns ``(entry_name, DynamicVerdict)``; the verdict is invalid
    (never divergent) when the harness cannot judge the run.  The
    engine is picked by ``config.engine`` — under ``both`` the
    interpreter's verdict is authoritative and the VM's shadow run only
    surfaces as ``engine_drift``.
    """
    try:
        plan = _entry_plan(source)
    except ParseError as error:
        return "", DynamicVerdict(valid=False, reason=f"parse: {error}")
    if plan is None:
        return "", DynamicVerdict(valid=False, reason="no runnable entry")
    entry, args = plan

    compiled = None
    note = ""
    if config.engine in ("bytecode", "both"):
        from ..execution.vm import compiled_for

        compiled, note = compiled_for(source)

    if config.engine == "bytecode":
        verdict = _observe_once(source, entry, args, stdin, config, compiled)
        if note:
            verdict = replace(verdict, engine_note=note)
        return entry, verdict

    verdict = _observe_once(source, entry, args, stdin, config, None)
    if config.engine == "both":
        drift = ""
        if compiled is not None:
            shadow = _observe_once(source, entry, args, stdin, config, compiled)
            drift = _engine_drift(verdict, shadow)
        if drift or note:
            verdict = replace(verdict, engine_drift=drift, engine_note=note)
    return entry, verdict


def run_oracles(
    source: str, stdin: tuple = (), config: OracleConfig = OracleConfig()
) -> Observation:
    """Both oracles over one input."""
    static = static_verdict(source)
    if static is None:
        return Observation(
            static=StaticVerdict(),
            dynamic=DynamicVerdict(valid=False, reason="parse error"),
        )
    entry, dynamic = dynamic_verdict(source, stdin, config)
    return Observation(static=static, dynamic=dynamic, entry=entry)

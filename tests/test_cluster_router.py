"""The cluster router: determinism, failover, drain, cache tiers, faults."""

import asyncio
import json

import pytest

from repro.cluster import ClusterError, ClusterRouter, InProcessShard
from repro.service import FaultPlan
from repro.service.jobs import AnalyzeJob

VULN = """
class A {{ public: double d; }};
class B{i} : public A {{ public: int x[{i} + 8]; }};
void f{i}() {{ A a; B{i} *b = new (&a) B{i}(); }}
"""


def jobs(count: int, tag: str = "t"):
    return [
        AnalyzeJob(source=VULN.format(i=index), label=f"{tag}-{index}")
        for index in range(count)
    ]


def run(coro):
    return asyncio.run(coro)


def make_router(count: int, cache_dir=None, fault_plan=None, **kwargs):
    shards = [
        InProcessShard(
            f"s{index}", workers=1, cache_dir=cache_dir, fault_plan=fault_plan
        )
        for index in range(count)
    ]
    return ClusterRouter(shards, vnodes=32, fault_plan=fault_plan, **kwargs)


async def closing(router, coro):
    try:
        return await coro
    finally:
        await router.close()


class TestDeterminism:
    def test_sweep_bytes_identical_at_any_shard_count(self):
        expected = None
        for count in (1, 2, 3):
            router = make_router(count)
            reports = run(closing(router, router.sweep(jobs(12))))
            blob = json.dumps(reports, sort_keys=True)
            if expected is None:
                expected = blob
            assert blob == expected, f"{count} shards diverged"

    def test_kill_one_shard_mid_sweep_keeps_bytes(self):
        async def killed_sweep():
            router = make_router(3)

            async def kill_soon():
                await asyncio.sleep(0.01)
                router.kill_shard("s1")

            reports, _ = await closing(
                router, asyncio.gather(router.sweep(jobs(12)), kill_soon())
            )
            assert router.metrics.snapshot()["counters"][
                "cluster.shards_killed"
            ] == 1
            return json.dumps(reports, sort_keys=True)

        control_router = make_router(1)
        control = json.dumps(
            run(closing(control_router, control_router.sweep(jobs(12)))),
            sort_keys=True,
        )
        killed = run(killed_sweep())
        assert killed == control


class TestFailover:
    def test_dead_shard_leaves_the_ring(self):
        router = make_router(3)

        async def scenario():
            await router.submit_job(jobs(1)[0])
            router.kill_shard("s0")
            assert "s0" not in router.ring
            assert router.metrics.snapshot()["gauges"][
                "cluster.shards_live"
            ] == 2
            # every key still resolves
            reports = await router.sweep(jobs(6, tag="after"))
            assert len(reports) == 6

        run(closing(router, scenario()))

    def test_all_shards_dead_raises_cluster_error(self):
        router = make_router(2)

        async def scenario():
            router.kill_shard("s0")
            router.kill_shard("s1")
            with pytest.raises(ClusterError):
                await router.submit_job(jobs(1)[0])

        run(closing(router, scenario()))

    def test_kill_unknown_shard_raises(self):
        router = make_router(1)
        with pytest.raises(KeyError):
            router.kill_shard("ghost")
        run(router.close())


class TestDrain:
    def test_drain_finishes_inflight_then_leaves(self):
        router = make_router(3)

        async def scenario():
            sweep = asyncio.ensure_future(router.sweep(jobs(12, tag="drain")))
            await asyncio.sleep(0.01)
            report = await router.drain_shard("s1")
            assert report["state"] == "draining"
            assert report["inflight"] == 0
            assert "s1" not in router.ring
            reports = await sweep
            assert len(reports) == 12
            counters = router.metrics.snapshot()["counters"]
            assert counters["cluster.shards_drained"] == 1
            # drained-but-alive shards are not "lost"
            assert counters.get("cluster.shards_killed", 0) == 0

        run(closing(router, scenario()))


class TestCacheTiers:
    def test_mem_tier_serves_repeat_jobs(self):
        router = make_router(2)

        async def scenario():
            job = jobs(1)[0]
            await router.submit_job(job)
            await router.submit_job(job)
            counters = router.metrics.snapshot()["counters"]
            assert counters["cluster.cache_hits.mem"] == 1
            assert router.cache.stats()["hits"]["mem"] == 1

        run(closing(router, scenario()))

    def test_disk_tier_survives_new_shards(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        first = make_router(2, cache_dir=cache_dir)
        job = jobs(1, tag="disk")[0]
        run(closing(first, first.submit_job(job)))

        second = make_router(2, cache_dir=cache_dir)

        async def scenario():
            await second.submit_job(job)
            hits = second.cache.stats()["hits"]
            assert hits["disk"] == 1

        run(closing(second, scenario()))

    def test_peer_tier_fetches_from_ring_successor(self):
        router = make_router(2)

        async def scenario():
            job = jobs(1, tag="peer")[0]
            key = job.key()
            await router.submit_job(job)
            old_owner = router.ring.assign(key)
            # grow the ring until the key's owner changes; the old
            # owner is then exactly the new owner's ring successor
            for index in range(16):
                shard = InProcessShard(f"n{index}", workers=1)
                router.add_shard(shard)
                if router.ring.assign(key) != old_owner:
                    break
            else:
                pytest.skip("16 joins never stole the key (vanishingly rare)")
            await router.submit_job(job)
            hits = router.cache.stats()["hits"]
            assert hits["peer"] == 1
            # the peer hit warmed the new owner: next lookup is mem-tier
            await router.submit_job(job)
            assert router.cache.stats()["hits"]["mem"] >= 1

        run(closing(router, scenario()))


class TestFaultSeams:
    def test_shard_crash_rule_kills_owner_and_recovers(self):
        plan = FaultPlan().add("shard-crash", selector="analyze", times=1)
        router = make_router(3, fault_plan=plan)

        async def scenario():
            reports = await router.sweep(jobs(8, tag="crash"))
            assert len(reports) == 8
            counters = router.metrics.snapshot()["counters"]
            assert counters["cluster.shards_killed"] == 1
            assert len(router.ring) == 2
            assert plan.injected["shard-crash"] == 1

        run(closing(router, scenario()))

    def test_partition_rule_reroutes_one_request(self):
        plan = FaultPlan().add("partition", times=1)
        router = make_router(3, fault_plan=plan)

        async def scenario():
            job = jobs(1, tag="part")[0]
            result = await router.submit_job(job)
            assert result["label"] == "part-0"
            counters = router.metrics.snapshot()["counters"]
            assert counters["cluster.partitions"] == 1
            assert len(router.ring) == 3  # nobody died
            # the rerouted compute warmed the true owner's cache
            await router.submit_job(job)
            assert router.cache.stats()["hits"]["mem"] == 1

        run(closing(router, scenario()))

"""A tour of repro.score: CWE/CAPEC risk with blast-radius propagation.

Walks the three layers on the built-in demo graph: the threat registry
mapping findings onto CWE/CAPEC entries, the package dependency DAG,
and score propagation — ending on the point of the subsystem: the
blast-radius ranking disagrees with the flat severity ranking, and the
service fan-out reproduces the sequential report byte-for-byte.

    PYTHONPATH=src python examples/score_demo.py
"""

from repro.score import (
    DEFAULT_THREATLIB,
    ScoreTarget,
    demo_graph,
    score_graph,
    scoring_versions,
)
from repro.service import ServiceEngine


def main() -> None:
    # -- the threat registry: one rule id -> one CWE/CAPEC grading ---------
    for severity in ("error", "warning", "info"):
        risk = DEFAULT_THREATLIB.apply(
            ScoreTarget(kind="finding", trigger="PN-OVERSIZE", severity=severity)
        )
        cwes = ",".join(f"CWE-{n}" for n in risk.threat.cwe_ids)
        print(
            f"PN-OVERSIZE as {severity:<7} -> {risk.threat.threat_id} "
            f"({cwes})  {risk.likelihood.label()}/{risk.impact.label()}  "
            f"score {risk.score}"
        )

    # -- the demo graph: a shared pool module with five dependents ---------
    graph = demo_graph()
    print(f"\ndemo graph: {len(graph)} packages")
    for name in graph.topological():
        imports = ", ".join(graph.package(name).imports) or "-"
        print(f"  {name:<14} imports: {imports}")

    # -- propagation: blast ranking vs flat severity ranking ---------------
    score = score_graph(graph)
    print()
    print(score.render())
    print(f"\nflat severity ranking : {' > '.join(score.flat_ranking[:3])}")
    print(f"blast radius ranking  : {' > '.join(score.ranking[:3])}")
    core = score.entry("core-pool")
    tool = score.entry("tool-report")
    print(
        f"\ncore-pool has only warning-grade flaws (intrinsic "
        f"{core.intrinsic}) but {core.dependents} transitive dependents -> "
        f"blast {core.blast_radius:.1f}; tool-report's proved overflow "
        f"(intrinsic {tool.intrinsic}) has no dependents -> blast "
        f"{tool.blast_radius:.1f}."
    )

    # -- the service twin: same bytes at any worker count ------------------
    with ServiceEngine(workers=4) as engine:
        parallel = engine.score_corpus(graph)
        families = [
            name
            for name in engine.metrics_snapshot()["counters"]
            if name.startswith("score.")
        ]
    assert parallel.to_json() == score.to_json()
    print(f"\n4-worker report is byte-identical; metrics: {families}")

    # -- attributability ---------------------------------------------------
    fingerprint = scoring_versions()
    print(
        f"report fingerprint: detector v{fingerprint['detector']}, "
        f"threat registry {fingerprint['threat_registry']}"
    )


if __name__ == "__main__":
    main()

"""Bytecode IR for MiniC++ — the compiled fast path of the executor.

The AST interpreter (:mod:`repro.execution.interpreter`) walks parsed
nodes with one Python call per node; that is the precise, readable
reference semantics, but the per-node dispatch dominates fuzzing cost.
This module lowers a parsed :class:`~repro.analysis.ast_nodes.Program`
to a compact linear bytecode executed by
:class:`repro.execution.vm.BytecodeVM` with a threaded opcode table —
no per-node recursion, calls preresolved to function indices, builtin
bulk-memory operations (``strncpy``/``memset``/``strcpy``) as single
ops.

Parity is the design constraint, not an afterthought: every observable
of the interpreter — memory events, placements, faults, the step budget
(each instruction carries the exact tick count the interpreter would
have charged at that point), even error messages — must be identical,
because the fuzzer's ``both``-engine mode diffs the two and treats any
divergence as a bug oracle.  Constructs the compiler does not
understand raise :class:`UnsupportedConstruct` so callers fall back to
the interpreter instead of guessing.

Instructions are ``(opcode, arg, ticks)`` tuples.  ``ticks`` is the
number of interpreter ``_tick()`` calls that precede the instruction's
work; adjacent ticks are coalesced (safe: the interpreter performs no
side effects between adjacent ticks), with an explicit :data:`TICK`
flush before loop heads so a statement-entry tick is never re-charged
per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis import ast_nodes as ast
from ..analysis.symbols import SymbolTable
from ..cxx.types import VOID_PTR, CType
from ..errors import ApiMisuseError
from .interpreter import _NOOP_BUILTINS, _SCALAR_CTYPES

#: Bump when the instruction set or compilation strategy changes in a
#: way that invalidates cached compiled programs.
BYTECODE_VERSION = 1


class UnsupportedConstruct(Exception):
    """The compiler met an AST shape it cannot lower faithfully.

    Raised at compile time only — callers run the whole program on the
    AST interpreter instead, so semantics never degrade silently.
    """


# --------------------------------------------------------------------------
# opcodes
#
# Plain module-level ints: the VM dispatches by indexing a list of bound
# methods, and the compiler embeds these constants directly.

PUSH = 0  # arg: literal value          -> push it
POP = 1  # discard top of stack
TICK = 2  # tick-only flush (arg unused)
LOAD_NAME = 3  # arg: ident               -> push rvalue of the variable
LVAL_NAME = 4  # arg: ident               -> push LValue
LVAL_MEMBER_DOT = 5  # arg: member name   [lvalue] -> [LValue]
LVAL_MEMBER_ARROW = 6  # arg: (name, pointee ident|None)  [addr] -> [LValue]
LVAL_INDEX = 7  # [base lvalue, index] -> [LValue]
LVAL_DEREF = 8  # [addr] -> [LValue(addr, INT)]
LVAL_LOAD = 9  # [LValue] -> [rvalue]
ADDR_OF = 10  # [LValue] -> [address]
STORE = 11  # [value, LValue] -> []
INCDEC = 12  # arg: "++"/"--"/"post++"/"post--"   [LValue] -> [value]
JUMP = 13  # arg: target ip
JUMP_IF_FALSE = 14  # arg: target ip      [value] -> []
RET = 15  # arg: has_value              [value?] -> (returns)
ADD = 16
SUB = 17
MUL = 18
DIV = 19
MOD = 20
LT = 21
GT = 22
LE = 23
GE = 24
EQ = 25
NE = 26
AND_ = 27
OR_ = 28
NEG = 29
NOT_ = 30
INV = 31
DEREF_READ = 32  # [addr] -> [*(int*)addr]
EXPECT_INT = 33  # [value] -> [int] (or the interpreter's coercion error)
SCOPE_PUSH = 34
SCOPE_POP = 35
DECL_SCALAR = 36  # arg: (ctype, name, type_ref, has_init, pointee)
DECL_ARRAY = 37  # arg: (element, name, type_ref)     [count] -> []
DECL_OBJECT = 38  # arg: (class_def, name, type_ref)
OBJ_CONSTRUCT = 39  # arg: (class_def, name, argc)     [args...] -> []
OBJ_COPY = 40  # arg: name                             [source] -> []
CIN_READ = 41  # [LValue] -> []
COUT = 42  # [value] -> []
DELETE = 43  # [addr] -> []
RAISE = 44  # arg: (exception class, message)
CALL = 45  # arg: (function index, argc)   [args...] -> [result]
RECV_NAME = 46  # arg: (ident, func name)  -> [(addr, class name)]
RECV_VALUE = 47  # arg: func name  [value] -> (always raises)
METHOD_CALL = 48  # arg: (func name, argc)  [recv, args...] -> [result]
NOOP_CALL = 49  # arg: (argc, event text)  [args...] -> [0]
STRNCPY = 50  # [dest, source, count] -> [dest]
STRCPY = 51  # [dest, source] -> [dest]
MEMSET = 52  # [dest, byte, count] -> [dest]
READFILE = 53  # [path, dest, count] -> [bytes read]
STORE_BYTES = 54  # [addr] -> [bytes captured]
INVOKE_PTR = 55  # [target] -> [result]
GETENV = 56  # arg: argc   [args...] -> [token text]
ATOI = 57  # [source] -> [int]
MAKE_TUPLE = 58  # arg: argc   [args...] -> [tuple]
SIZEOF_NAME = 59  # arg: ident -> [size]
HEAP_NEW_ARRAY = 60  # arg: (type name, element, argc)  [args..., count] -> [addr]
HEAP_NEW_CLASS = 61  # arg: (class_def, argc)           [args...] -> [addr]
HEAP_NEW_SCALAR = 62  # arg: (type name, element, argc) [args...] -> [addr]
PLACE_NEW_ARRAY = 63  # arg: (type name, element|None, argc, hint)
PLACE_NEW_CLASS = 64  # arg: (class_def, argc, hint)

N_OPS = 65

#: Opcode number -> mnemonic, for disassembly and tests.
OPCODE_NAMES = {
    value: name
    for name, value in sorted(globals().items())
    if isinstance(value, int) and name.isupper() and name not in ("BYTECODE_VERSION", "N_OPS")
}

_BINOPS = {
    "+": ADD,
    "-": SUB,
    "*": MUL,
    "/": DIV,
    "%": MOD,
    "<": LT,
    ">": GT,
    "<=": LE,
    ">=": GE,
    "==": EQ,
    "!=": NE,
    "&&": AND_,
    "||": OR_,
}


# --------------------------------------------------------------------------
# compiled units


@dataclass
class CompiledFunction:
    """One lowered body: a free function or a class method."""

    name: str
    frame_label: str
    #: Baked parameter bindings: (name, type_ref, ctype, pointee_class).
    params: tuple
    code: list
    class_name: Optional[str] = None
    #: For methods: baked field bindings rooted at the receiver —
    #: (name, offset, type_ref, ctype-or-None, member class, size) —
    #: or None when the class failed to lower (the VM raises the
    #: interpreter's "unknown class" error at call time).
    field_slots: Optional[tuple] = None


@dataclass
class CompiledProgram:
    """A program lowered to bytecode, plus the symbol table it was
    compiled against.

    The symbol table travels with the code on purpose: the VM must bake
    vtables and layouts from the *same* ClassDef objects the compiler
    resolved, or two runs of the same program would disagree on vtable
    identity.  Machine-independent, so one compiled program is reusable
    across any number of fresh machines (that is what the fuzz cache
    exploits).
    """

    program: ast.Program
    symbols: SymbolTable
    function_list: tuple
    function_index: dict
    methods: dict
    version: int = BYTECODE_VERSION

    @property
    def instruction_count(self) -> int:
        bodies = list(self.function_list) + list(self.methods.values())
        return sum(len(unit.code) for unit in bodies)


def disassemble(code: list) -> list:
    """Human-readable listing of one compiled body (docs and tests)."""
    lines = []
    for index, (op, arg, ticks) in enumerate(code):
        suffix = "" if arg is None else f" {arg!r}"
        tick_note = f"  ; ticks={ticks}" if ticks else ""
        lines.append(f"{index:4d}  {OPCODE_NAMES[op]}{suffix}{tick_note}")
    return lines


# --------------------------------------------------------------------------
# compiler


@dataclass
class _Body:
    code: list = field(default_factory=list)
    pending: int = 0


class Compiler:
    """Lowers one program; see the module docstring for the contract."""

    def __init__(self, program: ast.Program, symbols: Optional[SymbolTable] = None):
        self.program = program
        self.symbols = symbols or SymbolTable(program)
        self.function_index: dict = {}
        for index, function in enumerate(program.functions):
            # setdefault: duplicate names resolve to the first
            # declaration, matching Program.function().
            self.function_index.setdefault(function.name, index)
        self._body = _Body()

    # -- entry points -----------------------------------------------------

    def compile(self) -> CompiledProgram:
        function_list = tuple(
            self._compile_function(function) for function in self.program.functions
        )
        methods: dict = {}
        seen_classes = set()
        for cls in self.program.classes:
            if cls.name in seen_classes:
                continue
            seen_classes.add(cls.name)
            seen_methods = set()
            for method in cls.methods:
                if method.name in seen_methods:
                    continue
                # Only the first same-named method is reachable in the
                # interpreter; a bodyless first match falls through to
                # vtable dispatch, which the VM replicates on a dict
                # miss — so register bodied first-matches only.
                seen_methods.add(method.name)
                if method.body is not None:
                    methods[(cls.name, method.name)] = self._compile_method(cls, method)
        return CompiledProgram(
            program=self.program,
            symbols=self.symbols,
            function_list=function_list,
            function_index=self.function_index,
            methods=methods,
        )

    def _compile_function(self, function: ast.FunctionDecl) -> CompiledFunction:
        return CompiledFunction(
            name=function.name,
            frame_label=function.name,
            params=self._bake_params(function.params),
            code=self._compile_body(function.body),
        )

    def _compile_method(self, cls: ast.ClassDecl, method: ast.MethodDecl) -> CompiledFunction:
        lowered = self.symbols.cxx_class(cls.name)
        field_slots: Optional[tuple] = None
        if lowered is not None:
            layout = self.symbols.layout_engine().layout_of(lowered)
            field_types = {f.name: f.type for f in cls.fields}
            slots = []
            for slot in layout.field_slots:
                type_ref = field_types.get(slot.name, ast.TypeRef(name=slot.ctype.name))
                member_class = getattr(slot.ctype, "class_def", None)
                slots.append(
                    (
                        slot.name,
                        slot.offset,
                        type_ref,
                        None if member_class is not None else slot.ctype,
                        member_class,
                        slot.ctype.size,
                    )
                )
            field_slots = tuple(slots)
        return CompiledFunction(
            name=method.name,
            frame_label=f"{cls.name}::{method.name}",
            params=self._bake_params(method.params),
            code=self._compile_body(method.body),
            class_name=cls.name,
            field_slots=field_slots,
        )

    # -- helpers ----------------------------------------------------------

    def _ctype_for(self, type_ref: ast.TypeRef) -> Optional[CType]:
        if type_ref.is_pointer:
            return VOID_PTR
        return _SCALAR_CTYPES.get(type_ref.name)

    def _class_for(self, name: str):
        return self.symbols.cxx_class(name)

    def _bake_params(self, params: tuple) -> tuple:
        baked = []
        for param in params:
            ctype = self._ctype_for(param.type) or VOID_PTR
            pointee = self._class_for(param.type.name) if param.type.is_pointer else None
            baked.append((param.name, param.type, ctype, pointee))
        return tuple(baked)

    def _emit(self, op: int, arg: Any = None) -> None:
        body = self._body
        body.code.append((op, arg, body.pending))
        body.pending = 0

    def _flush(self) -> None:
        body = self._body
        if body.pending:
            body.code.append((TICK, None, body.pending))
            body.pending = 0

    def _emit_jump(self, op: int) -> int:
        self._emit(op, None)
        return len(self._body.code) - 1

    def _patch(self, index: int) -> None:
        op, _, ticks = self._body.code[index]
        self._body.code[index] = (op, len(self._body.code), ticks)

    def _raise(self, exc_class: type, message: str) -> None:
        self._emit(RAISE, (exc_class, message))

    # -- statements -------------------------------------------------------

    def _compile_body(self, block: ast.Block) -> list:
        self._body = _Body()
        for stmt in block.statements:
            self._compile_stmt(stmt)
        self._flush()
        return self._body.code

    def _compile_block_stmts(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._compile_stmt(stmt)

    def _compile_stmt(self, stmt: ast.Stmt) -> None:
        self._body.pending += 1  # the interpreter's per-statement tick
        if isinstance(stmt, ast.Block):
            self._emit(SCOPE_PUSH)
            self._compile_block_stmts(stmt)
            self._emit(SCOPE_POP)
        elif isinstance(stmt, ast.VarDecl):
            self._compile_vardecl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._compile_expr(stmt.value)
            self._compile_lvalue(stmt.target)
            self._emit(STORE)
        elif isinstance(stmt, ast.CinRead):
            for target in stmt.targets:
                self._compile_lvalue(target)
                self._emit(CIN_READ)
        elif isinstance(stmt, ast.CoutWrite):
            for value_expr in stmt.values:
                self._compile_expr(value_expr)
                self._emit(COUT)
        elif isinstance(stmt, ast.ExprStmt):
            self._compile_expr(stmt.expr)
            self._emit(POP)
        elif isinstance(stmt, ast.DeleteStmt):
            self._compile_expr(stmt.target)
            self._emit(EXPECT_INT)
            self._emit(DELETE)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._compile_expr(stmt.value)
                self._emit(RET, True)
            else:
                self._emit(RET, False)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        else:
            raise UnsupportedConstruct(f"statement {type(stmt).__name__}")

    def _compile_if(self, stmt: ast.If) -> None:
        self._compile_expr(stmt.cond)
        false_jump = self._emit_jump(JUMP_IF_FALSE)
        self._emit(SCOPE_PUSH)
        self._compile_block_stmts(stmt.then_body)
        self._emit(SCOPE_POP)
        if stmt.else_body is not None:
            end_jump = self._emit_jump(JUMP)
            self._patch(false_jump)
            self._emit(SCOPE_PUSH)
            self._compile_block_stmts(stmt.else_body)
            self._emit(SCOPE_POP)
            self._patch(end_jump)
        else:
            self._patch(false_jump)

    def _compile_while(self, stmt: ast.While) -> None:
        # The statement-entry tick must not be re-charged per iteration,
        # so flush it before the loop head.
        self._flush()
        head = len(self._body.code)
        self._compile_expr(stmt.cond)
        false_jump = self._emit_jump(JUMP_IF_FALSE)
        self._body.pending += 1  # the interpreter ticks after a truthy cond
        self._emit(SCOPE_PUSH)
        self._compile_block_stmts(stmt.body)
        self._emit(SCOPE_POP)
        self._emit(JUMP, head)
        self._patch(false_jump)

    def _compile_for(self, stmt: ast.For) -> None:
        self._emit(SCOPE_PUSH)  # the loop scope (init + step live here)
        if stmt.init is not None:
            self._compile_stmt(stmt.init)
        self._flush()
        head = len(self._body.code)
        false_jump = None
        if stmt.cond is not None:
            self._compile_expr(stmt.cond)
            false_jump = self._emit_jump(JUMP_IF_FALSE)
        self._body.pending += 1  # per-iteration tick
        self._emit(SCOPE_PUSH)  # fresh body scope per iteration
        self._compile_block_stmts(stmt.body)
        self._emit(SCOPE_POP)
        if stmt.step is not None:
            self._compile_stmt(stmt.step)
        self._emit(JUMP, head)
        if false_jump is not None:
            self._patch(false_jump)
        self._emit(SCOPE_POP)  # leave the loop scope

    def _compile_vardecl(self, decl: ast.VarDecl) -> None:
        type_ref = decl.type
        class_def = None if type_ref.is_pointer else self._class_for(type_ref.name)
        if class_def is not None and not type_ref.is_array:
            self._emit(DECL_OBJECT, (class_def, decl.name, type_ref))
            init = decl.init
            if isinstance(init, ast.Call) and init.func == type_ref.name:
                for arg in init.args:
                    self._compile_expr(arg)
                self._emit(OBJ_CONSTRUCT, (class_def, decl.name, len(init.args)))
            elif init is not None:
                self._compile_expr(init)
                self._emit(OBJ_COPY, decl.name)
            return
        if type_ref.is_array:
            element = _SCALAR_CTYPES.get(type_ref.name)
            if element is None:
                self._raise(
                    ApiMisuseError,
                    f"unsupported local array element '{type_ref.name}'",
                )
                return
            self._compile_expr(type_ref.array_size)
            self._emit(DECL_ARRAY, (element, decl.name, type_ref))
            return
        ctype = self._ctype_for(type_ref) or VOID_PTR
        has_init = decl.init is not None
        if has_init:
            self._compile_expr(decl.init)
        pointee = self._class_for(type_ref.name) if type_ref.is_pointer else None
        self._emit(DECL_SCALAR, (ctype, decl.name, type_ref, has_init, pointee))

    # -- lvalues ----------------------------------------------------------

    def _compile_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Name):
            self._emit(LVAL_NAME, expr.ident)
        elif isinstance(expr, ast.Member):
            if expr.arrow:
                self._compile_expr(expr.obj)
                pointee_ident = expr.obj.ident if isinstance(expr.obj, ast.Name) else None
                self._emit(LVAL_MEMBER_ARROW, (expr.name, pointee_ident))
            else:
                self._compile_lvalue(expr.obj)
                self._emit(LVAL_MEMBER_DOT, expr.name)
        elif isinstance(expr, ast.Index):
            self._compile_lvalue(expr.base)
            self._compile_expr(expr.index)
            self._emit(LVAL_INDEX)
        elif isinstance(expr, ast.Unary) and expr.op == "*":
            self._compile_expr(expr.operand)
            self._emit(LVAL_DEREF)
        else:
            self._raise(
                ApiMisuseError,
                f"expression {type(expr).__name__} is not an lvalue",
            )

    # -- expressions ------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr) -> None:
        self._body.pending += 1  # the interpreter's per-expression tick
        if isinstance(expr, ast.IntLit):
            self._emit(PUSH, expr.value)
        elif isinstance(expr, ast.FloatLit):
            self._emit(PUSH, expr.value)
        elif isinstance(expr, ast.StrLit):
            self._emit(PUSH, expr.value)
        elif isinstance(expr, ast.BoolLit):
            self._emit(PUSH, int(expr.value))
        elif isinstance(expr, ast.NullLit):
            self._emit(PUSH, 0)
        elif isinstance(expr, ast.Name):
            self._emit(LOAD_NAME, expr.ident)
        elif isinstance(expr, ast.Unary):
            self._compile_unary(expr)
        elif isinstance(expr, ast.Binary):
            self._compile_expr(expr.left)
            self._compile_expr(expr.right)
            opcode = _BINOPS.get(expr.op)
            if opcode is None:
                self._raise(ApiMisuseError, f"unsupported binary '{expr.op}'")
            else:
                self._emit(opcode)
        elif isinstance(expr, (ast.Member, ast.Index)):
            self._compile_lvalue(expr)
            self._emit(LVAL_LOAD)
        elif isinstance(expr, ast.SizeOf):
            self._compile_sizeof(expr)
        elif isinstance(expr, ast.Call):
            self._compile_call(expr)
        elif isinstance(expr, ast.NewExpr):
            self._compile_new(expr)
        else:
            raise UnsupportedConstruct(f"expression {type(expr).__name__}")

    def _compile_unary(self, expr: ast.Unary) -> None:
        op = expr.op
        if op == "&":
            self._compile_lvalue(expr.operand)
            self._emit(ADDR_OF)
        elif op in ("++", "--", "post++", "post--"):
            self._compile_lvalue(expr.operand)
            self._emit(INCDEC, op)
        else:
            self._compile_expr(expr.operand)
            if op == "*":
                self._emit(DEREF_READ)
            elif op == "-":
                self._emit(NEG)
            elif op == "!":
                self._emit(NOT_)
            elif op == "~":
                self._emit(INV)
            else:
                self._raise(ApiMisuseError, f"unsupported unary '{op}'")

    def _compile_sizeof(self, expr: ast.SizeOf) -> None:
        if expr.type_name is not None:
            size = self.symbols.sizeof_name(expr.type_name)
            if size is None:
                self._raise(ApiMisuseError, f"sizeof unknown type '{expr.type_name}'")
            else:
                self._emit(PUSH, size)
        elif isinstance(expr.expr, ast.Name):
            self._emit(SIZEOF_NAME, expr.expr.ident)
        else:
            self._raise(ApiMisuseError, "unsupported sizeof operand")

    def _compile_call(self, expr: ast.Call) -> None:
        if expr.receiver is not None:
            receiver = expr.receiver
            if isinstance(receiver, ast.Name):
                self._emit(RECV_NAME, (receiver.ident, expr.func))
            else:
                # The interpreter evaluates an untypable receiver and
                # then raises; RECV_VALUE replicates that, so the arg
                # code below is dead — emitted for structural clarity.
                self._compile_expr(receiver)
                self._emit(RECV_VALUE, expr.func)
            for arg in expr.args:
                self._compile_expr(arg)
            self._emit(METHOD_CALL, (expr.func, len(expr.args)))
            return
        index = self.function_index.get(expr.func)
        if index is not None:
            for arg in expr.args:
                self._compile_expr(arg)
            self._emit(CALL, (index, len(expr.args)))
            return
        self._compile_builtin(expr)

    def _builtin_args(self, args: tuple, spec: tuple) -> bool:
        """Compile builtin arguments with the interpreter's exact
        raise points: a missing argument raises the tuple IndexError
        *before* later arguments evaluate; an ``"i"`` argument is
        integer-coerced immediately after its own evaluation."""
        for position, kind in enumerate(spec):
            if position >= len(args):
                self._raise(IndexError, "tuple index out of range")
                return False
            self._compile_expr(args[position])
            if kind == "i":
                self._emit(EXPECT_INT)
        return True

    def _compile_builtin(self, expr: ast.Call) -> None:
        name = expr.func
        args = expr.args
        argc = len(args)
        if name in _NOOP_BUILTINS:
            for arg in args:
                self._compile_expr(arg)
            self._emit(NOOP_CALL, (argc, f"{name}()"))
        elif name == "strncpy":
            if self._builtin_args(args, ("i", "a", "i")):
                self._emit(STRNCPY)
        elif name == "strcpy":
            if self._builtin_args(args, ("i", "a")):
                self._emit(STRCPY)
        elif name == "memset":
            if self._builtin_args(args, ("i", "i", "i")):
                self._emit(MEMSET)
        elif name == "readFile":
            if self._builtin_args(args, ("a", "i", "i")):
                self._emit(READFILE)
        elif name == "store":
            if self._builtin_args(args, ("i",)):
                self._emit(STORE_BYTES)
        elif name == "invokeAccount":
            if self._builtin_args(args, ("i",)):
                self._emit(INVOKE_PTR)
        elif name == "getenv":
            for arg in args:
                self._compile_expr(arg)
            self._emit(GETENV, argc)
        elif name == "atoi":
            if self._builtin_args(args, ("a",)):
                self._emit(ATOI)
        elif self.symbols.is_class(name):
            for arg in args:
                self._compile_expr(arg)
            self._emit(MAKE_TUPLE, argc)
        else:
            self._raise(ApiMisuseError, f"unknown function '{name}'")

    def _compile_new(self, expr: ast.NewExpr) -> None:
        for arg in expr.args:
            self._compile_expr(arg)
        argc = len(expr.args)
        class_def = self._class_for(expr.type_name)
        element = _SCALAR_CTYPES.get(expr.type_name)
        if expr.placement is None:
            if expr.is_array:
                self._compile_expr(expr.array_count)
                self._emit(EXPECT_INT)
                if element is None:
                    self._raise(
                        ApiMisuseError,
                        f"new[] of unsupported element '{expr.type_name}'",
                    )
                else:
                    self._emit(HEAP_NEW_ARRAY, (expr.type_name, element, argc))
            elif class_def is not None:
                self._emit(HEAP_NEW_CLASS, (class_def, argc))
            elif element is not None:
                self._emit(HEAP_NEW_SCALAR, (expr.type_name, element, argc))
            else:
                self._raise(ApiMisuseError, f"new of unknown type '{expr.type_name}'")
            return
        self._compile_expr(expr.placement)
        self._emit(EXPECT_INT)
        # Static arena hint: the audit log's best-effort extent lookup
        # inspects `&var` / bare-name placement targets.
        target = expr.placement
        if isinstance(target, ast.Unary) and target.op == "&":
            target = target.operand
        hint = target.ident if isinstance(target, ast.Name) else None
        if expr.is_array:
            self._compile_expr(expr.array_count)
            self._emit(EXPECT_INT)
            self._emit(PLACE_NEW_ARRAY, (expr.type_name, element, argc, hint))
        elif class_def is None:
            self._raise(
                ApiMisuseError,
                f"placement new of unknown type '{expr.type_name}'",
            )
        else:
            self._emit(PLACE_NEW_CLASS, (class_def, argc, hint))


def compile_program(
    program: ast.Program, symbols: Optional[SymbolTable] = None
) -> CompiledProgram:
    """Lower a parsed program to bytecode (raises
    :class:`UnsupportedConstruct` when it cannot be done faithfully)."""
    return Compiler(program, symbols).compile()

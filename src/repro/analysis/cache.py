"""Content-hash memoization for the analysis pipeline.

Analyzing the same source twice — warm service sweeps, the legacy suite
running three scanners over one program, benchmark reruns — used to pay
the full lex + parse + walk cost every time.  This module memoizes the
two expensive products behind a sha256 content hash:

* **AST cache** — ``parse_cached`` maps ``sha256(source)`` to the parsed
  :class:`~.ast_nodes.Program`.  AST nodes are frozen dataclasses, so a
  cached tree can be shared between analyzers without copying.
* **Report cache** — ``cached_report`` maps
  ``(tool_key, version, sha256(source))`` to the finished findings.  The
  ``version`` is supplied by the caller (the detector passes
  ``DETECTOR_VERSION``, the legacy scanners ``LEGACY_RULE_VERSION``) so
  this module never imports them — the same bump-to-invalidate scheme as
  :mod:`repro.service.cache`, without the circular import.

Hits rebuild a fresh :class:`~.reports.AnalysisReport` around the cached
:class:`~.reports.Finding` tuple: findings are frozen and safe to share,
but the report object itself is mutable (``add``), so callers must never
alias one another's report.

Both tiers are process-local, thread-safe LRUs — the service layer's
:class:`~repro.service.cache.ResultCache` remains the cross-process
persistent tier.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable

from .ast_nodes import Program
from .parser import parse
from .reports import AnalysisReport

#: Entries per tier; analysis corpora are dozens of programs, not thousands.
MAX_CACHE_ENTRIES = 256


class _LruCache:
    """A small thread-safe LRU with hit/miss accounting."""

    def __init__(self, max_entries: int = MAX_CACHE_ENTRIES) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


_ast_cache = _LruCache()
_report_cache = _LruCache()


def source_hash(source: str) -> str:
    """The content key both tiers share."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def parse_cached(source: str) -> Program:
    """Parse ``source``, memoized on content.

    Parse errors propagate and are not cached — a failing source re-parses
    (and re-fails) on every call, which keeps error behavior identical to
    :func:`~.parser.parse`.
    """
    key = source_hash(source)
    program = _ast_cache.get(key)
    if program is None:
        program = parse(source)
        _ast_cache.put(key, program)
    return program


def cached_report(
    tool_key: str,
    version: str,
    source: str,
    build: Callable[[Program], AnalysisReport],
) -> AnalysisReport:
    """Run ``build`` over the (cached) AST, memoizing its report.

    ``tool_key`` must identify everything that can change the findings
    besides the source — detector class, scanner name and rule set —
    and ``version`` is the caller's semantics revision.
    """
    key = (tool_key, version, source_hash(source))
    cached = _report_cache.get(key)
    if cached is not None:
        tool, findings = cached
        return AnalysisReport(tool=tool, findings=list(findings))
    report = build(parse_cached(source))
    # Snapshot as a tuple: the caller may mutate the report it receives,
    # but the cache entry stays immutable.
    _report_cache.put(key, (report.tool, tuple(report.findings)))
    return report


def clear_analysis_caches() -> None:
    """Drop both tiers (tests, and benchmark cold-path measurement)."""
    _ast_cache.clear()
    _report_cache.clear()


def analysis_cache_stats() -> dict:
    """Hit/miss accounting for both tiers."""
    return {"ast": _ast_cache.stats(), "reports": _report_cache.stats()}

"""E5 — arc and code injection (§3.6.2).

Claim: both reach attacker code on the unprotected build; NX stops code
injection but not arc injection (return-to-libc).
"""

from repro.attacks import (
    NX_STACK,
    UNPROTECTED,
    ArcInjectionAttack,
    CodeInjectionAttack,
)

from conftest import print_table


def run_experiment():
    rows = []
    outcomes = {}
    for env in (UNPROTECTED, NX_STACK):
        for attack_cls in (ArcInjectionAttack, CodeInjectionAttack):
            result = attack_cls().run(env)
            outcomes[(env.label, result.name)] = result
            rows.append(
                (
                    env.label,
                    result.name,
                    "yes" if result.succeeded else "no",
                    result.detected_by or ("crash" if result.crashed else "-"),
                )
            )
    print_table(
        "E5: arc vs code injection, with and without NX (§3.6.2)",
        ["build", "attack", "shell?", "stopped by"],
        rows,
    )
    return outcomes


def test_e5_shape(benchmark):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert outcomes[("unprotected", "arc-injection")].succeeded
    assert outcomes[("unprotected", "code-injection")].succeeded
    # The classic split: NX stops injected code, not reused code.
    assert outcomes[("nx", "arc-injection")].succeeded
    nx_code = outcomes[("nx", "code-injection")]
    assert not nx_code.succeeded and nx_code.detected_by == "nx"

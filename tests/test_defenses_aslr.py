"""Tests for the ASLR extension."""


from repro.defenses.aslr import (
    ASLR_PAGE,
    StaleAddressAttack,
    aslr_machine,
    randomized_layout,
    run_aslr_comparison,
)
from repro.memory import SegmentKind


class TestRandomizedLayout:
    def test_layouts_differ_across_seeds(self):
        import random

        a = randomized_layout(random.Random(1))
        b = randomized_layout(random.Random(2))
        assert a[SegmentKind.TEXT] != b[SegmentKind.TEXT]

    def test_image_slides_together(self):
        import random

        layout = randomized_layout(random.Random(3))
        from repro.memory.address_space import DEFAULT_LAYOUT

        shift = layout[SegmentKind.TEXT][0] - DEFAULT_LAYOUT[SegmentKind.TEXT][0]
        assert shift % ASLR_PAGE == 0
        for kind in (SegmentKind.DATA, SegmentKind.BSS, SegmentKind.HEAP):
            assert (
                layout[kind][0] - DEFAULT_LAYOUT[kind][0] == shift
            ), "PIE slides the whole image together"

    def test_stack_randomized_independently_downward(self):
        import random

        layout = randomized_layout(random.Random(4))
        from repro.memory.address_space import DEFAULT_LAYOUT

        assert layout[SegmentKind.STACK][0] <= DEFAULT_LAYOUT[SegmentKind.STACK][0]


class TestAslrMachine:
    def test_machine_functional_on_randomized_layout(self):
        machine = aslr_machine(seed=9)
        address = machine.heap.allocate(32)
        machine.space.write_int(address, 7)
        assert machine.space.read_int(address) == 7
        frame = machine.push_frame("f")
        assert machine.pop_frame(frame).normal

    def test_same_seed_same_layout(self):
        a = aslr_machine(5)
        b = aslr_machine(5)
        assert [s.base for s in a.space.segments] == [
            s.base for s in b.space.segments
        ]

    def test_system_address_moves(self):
        a = aslr_machine(1).text.function_named("system").address
        b = aslr_machine(2).text.function_named("system").address
        assert a != b


class TestStaleAddressAttack:
    def test_recon_seed_victim_always_wins(self):
        results = run_aslr_comparison(trials=10)
        assert results["deterministic_success_rate"] == 1.0

    def test_aslr_mostly_crashes(self):
        results = run_aslr_comparison(trials=10)
        assert results["aslr_success_rate"] <= 0.2
        assert results["aslr_crash_count"] >= 8

    def test_attack_result_details(self):
        from repro.attacks.base import Environment

        result = StaleAddressAttack(trials=5).run(Environment(label="aslr"))
        assert result.detail["trials"] == 5
        assert 0.0 <= result.detail["success_rate"] <= 1.0

"""Consistent-hash ring: content-hash job keys → shard ids.

Each shard contributes ``vnodes`` virtual points to a shared 64-bit
hash space (the first 8 bytes of ``sha256("<shard>#<replica>")``); a
key is owned by the first point clockwise from its own hash.  Virtual
nodes smooth the load split, and — the property the cluster leans on —
removing one shard of N remaps *only* the keys that shard owned
(~K/N of them), each to the next point clockwise, while every other
key keeps its owner.  Everything is derived from shard ids alone, so
two processes configured with the same shards and vnodes compute
byte-identical assignments (:meth:`HashRing.assignment_digest`).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple


def _point(label: str) -> int:
    """A stable position in the 64-bit ring space."""
    digest = hashlib.sha256(label.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named shards."""

    def __init__(self, shards: Sequence[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._shards: List[str] = []
        for shard in shards:
            self.add(shard)

    # -- membership --------------------------------------------------------

    def add(self, shard_id: str) -> None:
        """Join a shard: its vnode points are spliced into the ring."""
        if not shard_id:
            raise ValueError("shard_id must be non-empty")
        if shard_id in self._shards:
            raise ValueError(f"shard '{shard_id}' already on the ring")
        self._shards.append(shard_id)
        for replica in range(self.vnodes):
            entry = (_point(f"{shard_id}#{replica}"), shard_id)
            bisect.insort(self._points, entry)

    def remove(self, shard_id: str) -> None:
        """Leave the ring; the departed shard's keys fall to successors."""
        if shard_id not in self._shards:
            raise KeyError(f"shard '{shard_id}' not on the ring")
        self._shards.remove(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]

    @property
    def shards(self) -> List[str]:
        """Member shard ids in join order."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    # -- assignment --------------------------------------------------------

    def assign(self, key: str) -> str:
        """The shard owning ``key``: first vnode point clockwise."""
        if not self._points:
            raise LookupError("ring has no shards")
        index = bisect.bisect_right(self._points, (_point(key), "\uffff"))
        if index == len(self._points):
            index = 0  # wrap past the top of the hash space
        return self._points[index][1]

    def successor(self, key: str, exclude: str) -> Optional[str]:
        """The first shard clockwise from ``key`` that is not ``exclude``.

        This is where ``key`` lands if ``exclude`` (its owner) leaves
        the ring — and therefore the peer most likely to hold a cached
        result for ``key`` after a topology change.  ``None`` when no
        other shard exists.
        """
        if not self._points:
            return None
        start = bisect.bisect_right(self._points, (_point(key), "\uffff"))
        total = len(self._points)
        for offset in range(total):
            shard = self._points[(start + offset) % total][1]
            if shard != exclude:
                return shard
        return None

    # -- determinism & balance --------------------------------------------

    def assignment_digest(self, keys: Sequence[str]) -> str:
        """sha256 over ``key→shard`` for ``keys`` — cross-process identity.

        Two ring instances with the same config produce the same
        digest for the same key sample, no matter which process (or
        machine) computed it.
        """
        digest = hashlib.sha256()
        for key in keys:
            digest.update(f"{key}={self.assign(key)}\n".encode())
        return digest.hexdigest()

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each shard owns (load-balance check)."""
        counts: Dict[str, int] = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.assign(key)] += 1
        return counts

    def describe(self) -> dict:
        """Topology snapshot for ``GET /cluster``."""
        return {
            "shards": sorted(self._shards),
            "vnodes": self.vnodes,
            "points": len(self._points),
        }

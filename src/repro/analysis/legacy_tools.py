"""Classic rule-based scanners — what 2011's tools actually checked.

The paper's Section 1 claim: *"None of the existing tools can detect
buffer overflow vulnerabilities due to placement new"* (Coverity,
Fortify, ITS4, Flawfinder, ...).  Those tools keyed on *unsafe API
usage* — ``strcpy``, ``gets``, ``sprintf``, format strings — and had no
placement-new rule.  :class:`LegacyRuleScanner` reimplements that rule
style over the MiniC++ AST; running it against the placement corpus
reproduces the 0-detections result (experiment E13) while the classic
corpus shows the scanner itself is not a straw man.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable

from . import ast_nodes as ast
from .cache import cached_report
from .reports import AnalysisReport, Finding, Severity

#: Revision of the classic rule set and matching semantics.  Bump on any
#: change that can alter findings — the analysis report cache keys on it
#: (same scheme as :data:`~.detector.DETECTOR_VERSION`).
LEGACY_RULE_VERSION = "1"


@dataclass(frozen=True)
class LegacyRule:
    """One pattern rule in the ITS4/Flawfinder tradition."""

    rule_id: str
    severity: Severity
    message: str
    matcher: Callable[[ast.Expr], bool]


def _rule_fingerprint(rule: LegacyRule) -> str:
    """Everything about a rule that can change its findings.

    Two rules sharing a ``rule_id`` must not share cache entries when
    their matcher, severity or message differ, so the matcher's identity
    (qualified name plus any closure contents, e.g. the function-name
    tuple inside a :func:`_call_named` matcher) is part of the print.
    """
    matcher = rule.matcher
    ident = "{}.{}".format(
        getattr(matcher, "__module__", "?"),
        getattr(matcher, "__qualname__", None) or repr(matcher),
    )
    closure = getattr(matcher, "__closure__", None)
    if closure:
        try:
            ident += repr(tuple(cell.cell_contents for cell in closure))
        except ValueError:  # an unfilled cell: fall back to the name alone
            pass
    return f"{rule.rule_id}|{rule.severity.value}|{rule.message}|{ident}"


def _call_named(*names: str) -> Callable[[ast.Expr], bool]:
    def match(expr: ast.Expr) -> bool:
        return isinstance(expr, ast.Call) and expr.func in names

    return match


def _strncpy_nonconstant_length(expr: ast.Expr) -> bool:
    """ITS4 flagged strncpy/memcpy whose length is not a literal."""
    if not isinstance(expr, ast.Call) or expr.func not in ("strncpy", "memcpy"):
        return False
    if len(expr.args) < 3:
        return True
    return not isinstance(expr.args[2], ast.IntLit)


def _format_string_from_variable(expr: ast.Expr) -> bool:
    if not isinstance(expr, ast.Call) or expr.func not in ("printf", "syslog"):
        return False
    return bool(expr.args) and not isinstance(expr.args[0], ast.StrLit)


#: The canonical 2011-era rule set.  Note what is absent: nothing about
#: ``new`` of any kind.
CLASSIC_RULES: tuple[LegacyRule, ...] = (
    LegacyRule(
        rule_id="CLASSIC-UNSAFE-API",
        severity=Severity.ERROR,
        message="use of an unbounded copy function (strcpy/strcat/gets/sprintf)",
        matcher=_call_named("strcpy", "strcat", "gets", "sprintf", "vsprintf", "scanf"),
    ),
    LegacyRule(
        rule_id="CLASSIC-BOUNDED-COPY-REVIEW",
        severity=Severity.WARNING,
        message="bounded copy with non-constant length; verify the bound",
        matcher=_strncpy_nonconstant_length,
    ),
    LegacyRule(
        rule_id="CLASSIC-FORMAT-STRING",
        severity=Severity.ERROR,
        message="format string taken from a variable",
        matcher=_format_string_from_variable,
    ),
    LegacyRule(
        rule_id="CLASSIC-ALLOCA",
        severity=Severity.WARNING,
        message="alloca with attacker-influenceable size",
        matcher=_call_named("alloca"),
    ),
)


class LegacyRuleScanner:
    """A pattern scanner in the style of ITS4/RATS/Flawfinder."""

    def __init__(
        self,
        name: str = "legacy-scanner",
        rules: tuple[LegacyRule, ...] = CLASSIC_RULES,
    ) -> None:
        self.name = name
        self.rules = rules

    def scan_source(self, source: str) -> AnalysisReport:
        """Parse and scan source text.

        Memoized on source content via :mod:`.cache`, keyed by the
        scanner's name and a digest of the full rule contents
        (ids, severities, messages, matcher identity) so
        differently-tuned profiles — even ones reusing a rule_id with a
        different matcher — never share entries.
        """
        rule_sig = hashlib.sha256(
            "\n".join(_rule_fingerprint(rule) for rule in self.rules).encode("utf-8")
        ).hexdigest()[:16]
        return cached_report(
            f"legacy:{self.name}:{rule_sig}",
            LEGACY_RULE_VERSION,
            source,
            self.scan,
        )

    def scan(self, program: ast.Program) -> AnalysisReport:
        """Pattern-match every expression in every function and method."""
        report = AnalysisReport(tool=self.name)
        for function in program.functions:
            self._scan_block(function.body, function.name, report)
        for cls in program.classes:
            for method in cls.methods:
                if method.body is not None:
                    self._scan_block(
                        method.body, f"{cls.name}::{method.name}", report
                    )
        return report

    def _scan_block(
        self, block: ast.Block, function: str, report: AnalysisReport
    ) -> None:
        # iter_expressions visits each expression exactly once; the old
        # walk_statements × walk_expressions pairing re-walked every
        # nested statement's expressions at each enclosing level.
        for expr in ast.iter_expressions(block):
            for rule in self.rules:
                if rule.matcher(expr):
                    report.add(
                        Finding(
                            rule=rule.rule_id,
                            severity=rule.severity,
                            message=rule.message,
                            line=expr.line,
                            function=function,
                            tool=self.name,
                        )
                    )


def simulated_tool_suite() -> tuple[LegacyRuleScanner, ...]:
    """Three scanners with the same blind spot, differently tuned —
    stand-ins for the commercial tools the paper lists.

    The *strict* profile only reports errors (low-noise commercial
    default); the *audit* profile includes review-level warnings.
    """
    strict = LegacyRuleScanner(
        name="legacy-strict",
        rules=tuple(r for r in CLASSIC_RULES if r.severity is Severity.ERROR),
    )
    audit = LegacyRuleScanner(name="legacy-audit", rules=CLASSIC_RULES)
    unsafe_api_only = LegacyRuleScanner(
        name="legacy-grep", rules=(CLASSIC_RULES[0],)
    )
    return (strict, audit, unsafe_api_only)


def run_tool_suite(source: str) -> tuple[tuple[str, AnalysisReport], ...]:
    """Run the whole simulated suite with one parse and one AST walk.

    Every suite profile's rules are drawn from the same pool, so instead
    of scanning once per scanner, scan once with the union rule set and
    *project* each profile's report by filtering the union findings on
    that profile's rule ids (retagged with the profile's tool name).
    Results are identical to calling ``scan_source`` per scanner.

    Returns ``(scanner_name, report)`` pairs in suite order.
    """
    suite = simulated_tool_suite()
    union_rules: list[LegacyRule] = []
    seen_ids = set()
    for scanner in suite:
        for rule in scanner.rules:
            if rule.rule_id not in seen_ids:
                seen_ids.add(rule.rule_id)
                union_rules.append(rule)
    union = LegacyRuleScanner(name="legacy-union", rules=tuple(union_rules))
    full = union.scan_source(source)
    projected = []
    for scanner in suite:
        wanted = {rule.rule_id for rule in scanner.rules}
        report = AnalysisReport(tool=scanner.name)
        for finding in full.findings:
            if finding.rule in wanted:
                report.add(replace(finding, tool=scanner.name))
        projected.append((scanner.name, report))
    return tuple(projected)

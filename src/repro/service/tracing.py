"""End-to-end job tracing: per-stage spans in a bounded ring buffer.

Every job submitted to the scheduler gets a trace id and a
:class:`JobTrace` that records one :class:`TraceSpan` per lifecycle
stage — ``submitted``, ``queued`` (or ``cache-hit``), ``dispatched``,
``attempt``/``retry``, and a terminal ``resolved`` — each stamped with
the elapsed seconds since submission.  The finished span list rides on
:attr:`~repro.service.scheduler.JobOutcome.trace` and stays queryable
after the fact through the scheduler's :class:`TraceBuffer`, which the
HTTP server exposes as ``GET /trace/<key>``.

The buffer is a fixed-capacity ring keyed by job key (a re-submitted
job replaces its older trace), so tracing is always on without growing
without bound under sustained load.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class TraceSpan:
    """One lifecycle stage: name, seconds since submit, free-form detail."""

    stage: str
    at: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        span = {"stage": self.stage, "at": self.at}
        if self.detail:
            span["detail"] = self.detail
        return span


class JobTrace:
    """The ordered span record for one submitted job."""

    def __init__(
        self,
        trace_id: str,
        key: str,
        kind: str,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.trace_id = trace_id
        self.key = key
        self.kind = kind
        self._clock = clock
        self._started = clock()
        self._spans: List[TraceSpan] = []
        self._lock = threading.Lock()

    def record(self, stage: str, **detail) -> None:
        """Append one span stamped with the elapsed time since submit."""
        span = TraceSpan(
            stage=stage,
            at=round(self._clock() - self._started, 6),
            detail={k: v for k, v in detail.items() if v is not None},
        )
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[TraceSpan]:
        with self._lock:
            return list(self._spans)

    def stages(self) -> List[str]:
        """Just the stage names, in order (handy for assertions)."""
        return [span.stage for span in self.spans]

    def to_dict(self) -> dict:
        """JSON-able shape served by ``GET /trace/<key>``."""
        return {
            "trace_id": self.trace_id,
            "key": self.key,
            "kind": self.kind,
            "spans": [span.to_dict() for span in self.spans],
        }


class TraceBuffer:
    """Fixed-capacity ring of the most recent trace per job key."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._traces: dict = {}  # key -> JobTrace, insertion-ordered
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.evicted = 0

    def start(self, key: str, kind: str) -> JobTrace:
        """Open (and retain) a fresh trace for one submission of ``key``."""
        trace = JobTrace(f"t{next(self._ids):06d}-{key[:18]}", key, kind)
        with self._lock:
            self._traces.pop(key, None)  # re-submit replaces the old trace
            self._traces[key] = trace
            while len(self._traces) > self.capacity:
                oldest = next(iter(self._traces))
                del self._traces[oldest]
                self.evicted += 1
        return trace

    def get(self, key: str) -> Optional[JobTrace]:
        with self._lock:
            return self._traces.get(key)

    def keys(self) -> List[str]:
        """Traced job keys, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

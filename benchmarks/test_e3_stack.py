"""E3 — stack overflow index arithmetic (§3.6.1, Listing 13).

Claim: which ``ssn[i]`` word reaches the return address depends on the
frame shape — i=0 with neither FP nor canary, i=1 with FP, i=2 with FP
and canary.
"""

from repro.core import placement_new
from repro.runtime import CanaryPolicy, Machine, MachineConfig
from repro.workloads import make_student_classes

from conftest import print_table


def frame_mapping(save_fp: bool, canary: bool):
    machine = Machine(
        MachineConfig(
            canary_policy=CanaryPolicy.RANDOM if canary else CanaryPolicy.NONE,
            save_frame_pointer=save_fp,
        )
    )
    student_cls, grad_cls = make_student_classes()
    frame = machine.push_frame("addStudent")
    stud = frame.local_object(student_cls, "stud")
    gs = placement_new(machine, stud, grad_cls)
    hits = []
    for index in range(3):
        address = gs.element_address("ssn", index)
        if address == frame.slots.return_slot:
            hits.append("RET")
        elif frame.slots.fp_slot is not None and address == frame.slots.fp_slot:
            hits.append("FP")
        elif (
            frame.slots.canary_slot is not None
            and address == frame.slots.canary_slot
        ):
            hits.append("CANARY")
        else:
            hits.append("-")
    return hits


def run_experiment():
    configs = [
        ("no FP, no canary", False, False),
        ("FP saved", True, False),
        ("FP + canary", True, True),
    ]
    rows = []
    outcome = {}
    for label, save_fp, canary in configs:
        hits = frame_mapping(save_fp, canary)
        outcome[label] = hits
        rows.append((label, hits[0], hits[1], hits[2]))
    print_table(
        "E3: which ssn[i] hits which frame slot (Listing 13)",
        ["frame shape", "ssn[0]", "ssn[1]", "ssn[2]"],
        rows,
    )
    return outcome


def test_e3_shape(benchmark):
    outcome = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The paper's exact mapping.
    assert outcome["no FP, no canary"][0] == "RET"
    assert outcome["FP saved"] == ["FP", "RET", "-"]
    assert outcome["FP + canary"] == ["CANARY", "FP", "RET"]

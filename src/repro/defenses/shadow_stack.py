"""Return-address stack — the §5.2 alternative StackGuard comparison.

The paper: *"In order to provide non-executable stacks, a possible
approach is to use a return address stack, which holds the return
addresses of functions"* ([27] Wilander & Kamkar, [20] Ragel).  Unlike a
canary — which only notices writes *between* the locals and the saved
registers — a shadow stack compares the return address itself against a
protected copy, so the E4 selective overwrite cannot evade it.

Implemented as a machine wrapper: :func:`protect_machine` interposes on
``push_frame``/``pop_frame``, keeping the copies outside the simulated
address space (as a hardware or kernel-protected region would be).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulatedProcessError
from ..runtime.frames import CallFrame
from ..runtime.machine import Machine


class ReturnAddressTampering(SimulatedProcessError):
    """The shadow stack rejected a mismatched return address."""

    def __init__(self, function: str, expected: int, found: int) -> None:
        self.function = function
        self.expected = expected
        self.found = found
        super().__init__(
            f"return-address stack mismatch in {function}: "
            f"stored {expected:#010x}, frame holds {found:#010x}"
        )


@dataclass
class ShadowReturnStack:
    """Protected copies of every live frame's return address."""

    machine: Machine
    _stack: list = field(default_factory=list)
    checks: int = 0
    tamper_events: int = 0

    def attach(self) -> None:
        """Interpose on the machine's frame push/pop."""
        original_push = self.machine.push_frame
        original_pop = self.machine.pop_frame

        def guarded_push(name: str) -> CallFrame:
            frame = original_push(name)
            self._stack.append((frame.name, frame.original_return))
            return frame

        def guarded_pop(frame: CallFrame):
            self.checks += 1
            stored_name, stored_return = self._stack.pop()
            found = frame.read_return_address()
            if found != stored_return:
                self.tamper_events += 1
                # Restore the protected copy and abort, as [20] does in
                # hardware; we abort (strictest policy).
                raise ReturnAddressTampering(
                    frame.name, expected=stored_return, found=found
                )
            return original_pop(frame)

        self.machine.push_frame = guarded_push  # type: ignore[method-assign]
        self.machine.pop_frame = guarded_pop  # type: ignore[method-assign]

    @property
    def depth(self) -> int:
        """Live protected frames."""
        return len(self._stack)


def protect_machine(machine: Machine) -> ShadowReturnStack:
    """Attach a shadow return stack to ``machine`` and return it."""
    shadow = ShadowReturnStack(machine)
    shadow.attach()
    return shadow

"""Library-interception defense ("libsafe"/"libverify") — Section 5.2.

The paper suggests library-based protection *"can be updated
appropriately to intercept dynamic invocations to placement new and
carry out bounds checking.  However ... bounds checking may not be as
easy here because placement new just operates on an address, not on a
lexically declared array."*

:class:`LibSafePlacementGuard` implements exactly that: it intercepts
placements and checks them against the allocation tracker's knowledge of
the arena at that address.  The measurable limitation is faithful too —
a placement at a *raw interior address* the tracker never saw passes
unchecked, which :func:`coverage_report` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..cxx.classdef import ClassDef
from ..cxx.object_model import Instance
from ..core.placement import placement_new, resolve_target
from ..errors import BoundsCheckViolation
from ..runtime.machine import Machine


@dataclass
class InterceptionRecord:
    """One intercepted placement and what the guard knew about it."""

    address: int
    object_size: int
    arena_known: bool
    arena_size: Optional[int]
    blocked: bool


@dataclass
class LibSafePlacementGuard:
    """Intercepts placement new, enforcing bounds where bounds are known."""

    machine: Machine
    records: list[InterceptionRecord] = field(default_factory=list)

    def place(
        self, target: Any, class_def: ClassDef, *args: Any
    ) -> Instance:
        """The intercepted ``new (target) T(...)``.

        If the tracker knows the arena at the target address, enforce the
        Section 5.1 size rule; otherwise fall through unchecked — the
        library has no lexical array to measure against.
        """
        address, declared = resolve_target(target)
        record = self.machine.tracker.lookup(address)
        arena_size: Optional[int] = None
        arena_known = False
        if record is not None:
            arena_known = True
            arena_size = record.true_size
        elif declared is not None:
            arena_known = True
            arena_size = declared
        object_size = self.machine.layouts.sizeof(class_def)
        blocked = arena_known and object_size > (arena_size or 0)
        self.records.append(
            InterceptionRecord(
                address=address,
                object_size=object_size,
                arena_known=arena_known,
                arena_size=arena_size,
                blocked=blocked,
            )
        )
        if blocked:
            raise BoundsCheckViolation(
                arena_size=arena_size or 0,
                object_size=object_size,
                detail="libsafe interception",
            )
        return placement_new(self.machine, target, class_def, *args)

    def coverage_report(self) -> dict:
        """How much of the placement traffic the guard could judge —
        the paper's 'not as easy' gap, quantified."""
        total = len(self.records)
        known = sum(1 for r in self.records if r.arena_known)
        blocked = sum(1 for r in self.records if r.blocked)
        return {
            "placements": total,
            "arena_known": known,
            "blind_spots": total - known,
            "blocked": blocked,
            "coverage": known / total if total else 1.0,
        }

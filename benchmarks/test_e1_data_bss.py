"""E1 — data/bss overflow (§3.5, Listing 11).

Claim: placing a GradStudent at bss ``stud1`` and feeding ``ssn[]`` from
input rewrites the adjacent ``stud2``'s ``gpa``.
"""

from repro.attacks import UNPROTECTED, DataBssOverflowAttack

from conftest import print_table


def run_experiment():
    rows = []
    cases = [
        ("paper inputs", (0x11111111, 0x22222222, 777)),
        ("zero ssn", (0, 0, 0)),
        ("max words", (0x7FFFFFFF, 0x7FFFFFFF, 0x7FFFFFFF)),
    ]
    results = []
    for label, ssn in cases:
        result = DataBssOverflowAttack(ssn_inputs=ssn).run(UNPROTECTED)
        results.append((label, result))
        rows.append(
            (
                label,
                result.detail["gpa_before"],
                f"{result.detail['gpa_after']:.6g}",
                result.succeeded,
            )
        )
    print_table(
        "E1: data/bss overflow — stud2.gpa before/after (Listing 11)",
        ["inputs", "gpa before", "gpa after", "corrupted"],
        rows,
    )
    return results


def test_e1_shape(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_label = dict(results)
    # Paper shape: attacker-chosen words land in the neighbour's gpa.
    assert by_label["paper inputs"].succeeded
    assert by_label["paper inputs"].detail["matches_injected_bytes"]
    assert by_label["max words"].succeeded
    # All-zero ssn writes 0.0 over gpa 3.5 — still corruption.
    assert by_label["zero ssn"].succeeded

"""``python -m repro.service`` — run one ``repro-serve`` process.

The cluster front-end launches its subprocess shards through this
module so a shard needs only the interpreter, not an installed
``repro-serve`` console script.
"""

import sys

from ..cli import serve_main

if __name__ == "__main__":
    sys.exit(serve_main())

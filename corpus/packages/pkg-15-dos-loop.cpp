// package: pkg-15-dos-loop
class Tiny { public: int f0; };
class Wide : public Tiny { public: int g0; int g1; };
void run() {
  Wide arena;
  Tiny *p = new (&arena) Tiny();
  cin >> p->f0;
  int i = 0;
  while (i < p->f0 && i < 8) {
    i = i + 1;
  }
}

"""Modification of variables — Section 3.7, Listings 14 and 15.

Two victims: a data/bss global (``noOfStudents``) adjacent to the
overflowed global object, and a stack local (``int n``) declared before
the local object.  The stack case includes the paper's alignment
analysis: ``ssn[0]`` lands in the padding hole above ``stud`` and only
``ssn[1]`` reaches ``n``.
"""

from __future__ import annotations

from ..cxx.types import INT
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment


class DataVariableAttack(AttackScenario):
    """Listing 14: overflow of bss ``stud1`` rewrites ``noOfStudents``."""

    name = "data-variable-overwrite"
    paper_ref = "§3.7.1, Listing 14"
    description = "global counter adjacent to overflowed bss object rewritten"

    def __init__(self, injected_count: int = 1_000_000) -> None:
        self.injected_count = injected_count

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        stud1 = machine.static_object(student_cls, "stud1")
        # int noOfStudents = 0; declared right after stud1.  The paper
        # puts it in data (initialized), but adjacency in our bss image
        # requires same-segment declaration; bss-with-explicit-zero is
        # semantically identical and keeps the neighbour relationship.
        machine.static_scalar(INT, "noOfStudents")
        env.protect(machine, stud1.address, stud1.size)

        before = machine.read_global("noOfStudents")
        st = env.place(machine, stud1, grad_cls, 3.0, 2010, 1)
        st.set_element("ssn", 0, self.injected_count)

        after = machine.read_global("noOfStudents")
        return self.result(
            env,
            succeeded=(after == self.injected_count and after != before),
            machine=machine,
            count_before=before,
            count_after=after,
        )


class StackLocalVariableAttack(AttackScenario):
    """Listing 15: ``int n = 5; Student stud;`` — ssn[1] rewrites ``n``.

    The result detail records the padding analysis: which ssn index hit
    the gap and which hit the variable.
    """

    name = "stack-local-overwrite"
    paper_ref = "§3.7.2, Listing 15"
    description = "loop bound n rewritten through padding-aware overflow"

    def __init__(self, injected_n: int = 7777) -> None:
        self.injected_n = injected_n

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        frame = machine.push_frame("addStudent")
        n_address = frame.local_scalar(INT, "n", init=5)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        gap = frame.gap_above("stud")
        gs = env.place(machine, stud, grad_cls)

        # The paper's alignment claim: ssn[0] lands in padding, n intact.
        gs.set_element("ssn", 0, 0x7E57)
        n_after_ssn0 = machine.space.read_int(n_address)
        gs.set_element("ssn", 1, self.injected_n)
        n_after_ssn1 = machine.space.read_int(n_address)

        machine.pop_frame(frame)
        return self.result(
            env,
            succeeded=(n_after_ssn1 == self.injected_n and n_after_ssn0 == 5),
            machine=machine,
            padding_above_stud=gap,
            n_after_ssn0=n_after_ssn0,
            n_after_ssn1=n_after_ssn1,
            ssn0_hit_padding=(n_after_ssn0 == 5 and gap == 4),
        )

"""E21 — memory-simulator and analysis-pipeline hot-path micro-benchmarks.

Every attack, defense, forensics pass and service job funnels through
``AddressSpace.read``/``write``, and every analysis job funnels through
``analyze_source`` — so these two paths are the tax on the whole E1–E20
suite.  This file times them directly:

* raw 4-byte read/write throughput with **no observers** (the zero-hook
  fast path) and with a counting hook armed (the dispatch cost any
  runtime defense pays),
* NUL-terminated string scans (``read_c_string``),
* bulk sanitization fills (``fill``),
* cold vs. warm ``analyze_source`` (the content-hash AST/report cache).

The shape tests assert the semantics the fast path must preserve: a
registered hook still observes *every* accessed byte, and a warm
re-analysis reports exactly what the cold one did.

``repro-bench --quick`` runs only this file; the timings land in the
repo-root ``BENCH_<date>.json`` trajectory.
"""

from __future__ import annotations

import pytest

from repro import analysis
from repro.analysis import analyze_source
from repro.memory import AddressSpace, SegmentKind
from repro.workloads.corpus import FULL_CORPUS

#: 4-byte accesses per benchmark round.
ACCESSES_PER_ROUND = 256

#: The largest corpus program: the heaviest single parse+analyze job.
ANALYZE_SOURCE = max((program.source for program in FULL_CORPUS), key=len)


def _clear_analysis_caches() -> None:
    """Drop the AST/report caches (no-op on trees that predate them)."""
    clear = getattr(analysis, "clear_analysis_caches", None)
    if clear is not None:
        clear()


@pytest.fixture
def space():
    return AddressSpace()


def _access_loop(space, base):
    write, read = space.write, space.read
    payload = b"\xab\xcd\xef\x01"
    for i in range(ACCESSES_PER_ROUND):
        offset = base + (i * 16) % 4096
        write(offset, payload)
        read(offset, 4)


def test_e21_raw_access_unhooked(benchmark, space):
    """4-byte write+read pairs with no observers registered."""
    base = space.segment(SegmentKind.HEAP).base
    benchmark(_access_loop, space, base)
    assert space.read(base, 4) == b"\xab\xcd\xef\x01"


def test_e21_raw_access_hooked(benchmark, space):
    """The same loop with a counting hook armed — and verified complete."""
    base = space.segment(SegmentKind.HEAP).base
    events = []
    space.add_access_hook(lambda addr, data, is_write: events.append(is_write))

    # Pre-flight: one un-timed round must notify once per access.
    _access_loop(space, base)
    assert len(events) == 2 * ACCESSES_PER_ROUND
    assert sum(events) == ACCESSES_PER_ROUND  # half writes, half reads

    events.clear()
    benchmark(_access_loop, space, base)
    assert events and len(events) % (2 * ACCESSES_PER_ROUND) == 0


def test_e21_c_string_scan(benchmark, space):
    """Scanning a 2 KiB NUL-terminated string out of the heap."""
    base = space.segment(SegmentKind.HEAP).base
    text = "A" * 2048
    space.write_c_string(base, text)
    result = benchmark(space.read_c_string, base, 4096)
    assert result == text


def test_e21_fill(benchmark, space):
    """memset-style sanitization of a 4 KiB arena."""
    base = space.segment(SegmentKind.HEAP).base
    benchmark(space.fill, base, 4096, 0)
    assert space.read(base + 4000, 8) == b"\x00" * 8


def test_e21_analyze_cold(benchmark):
    """Full lex+parse+analyze of the heaviest corpus program."""

    def cold():
        _clear_analysis_caches()
        return analyze_source(ANALYZE_SOURCE)

    report = benchmark(cold)
    assert report.findings  # the corpus program is vulnerable by design


def test_e21_analyze_warm(benchmark):
    """Re-analysis of an already-seen source (content-hash cache hit)."""
    _clear_analysis_caches()
    analyze_source(ANALYZE_SOURCE)  # prime
    report = benchmark(analyze_source, ANALYZE_SOURCE)
    assert report.findings


# -- shape: semantics the fast path must not change -------------------------


def test_e21_shape_hooks_observe_every_byte():
    """With a hook armed, every byte of every access is observed —
    including bulk fills and c-string scans on the fast path."""
    space = AddressSpace()
    base = space.segment(SegmentKind.HEAP).base
    reads: list = []
    writes: list = []

    def hook(address, data, is_write):
        (writes if is_write else reads).append((address, len(data), bytes(data)))

    space.add_access_hook(hook)

    space.write(base, b"hello")
    space.read(base, 5)
    space.fill(base + 64, 128, 0xAA)
    space.write_c_string(base + 256, "observe me")
    reads.clear()
    space.read_c_string(base + 256)

    # The write and the fill were observed with their exact bytes.
    assert (base, 5, b"hello") in writes
    fill_events = [w for w in writes if w[0] == base + 64]
    assert fill_events and fill_events[0][2] == b"\xaa" * 128

    # Every byte of the scanned string (and its terminator) was observed
    # as read, whether the scan was notified per-byte or in bulk.
    observed = set()
    for address, length, _ in reads:
        observed.update(range(address, address + length))
    expected = set(range(base + 256, base + 256 + len("observe me") + 1))
    assert expected <= observed


def test_e21_shape_warm_equals_cold():
    """The cached re-analysis reports exactly what the cold run did."""
    _clear_analysis_caches()
    cold = analyze_source(ANALYZE_SOURCE)
    warm = analyze_source(ANALYZE_SOURCE)
    assert warm.tool == cold.tool
    assert warm.render() == cold.render()
    assert warm.rules_fired() == cold.rules_fired()

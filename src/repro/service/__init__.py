"""The service layer: concurrent, cached analysis/attack job execution.

The repo's first concurrency, caching, and networking subsystem.  Jobs
(:mod:`jobs`) are content-addressed work specs; the scheduler
(:mod:`scheduler`) runs them on a worker pool (:mod:`workers`) behind a
result cache (:mod:`cache`) with full metrics accounting
(:mod:`metrics`); :mod:`server`/:mod:`client` expose everything over a
stdlib JSON API, and :class:`~repro.service.engine.ServiceEngine` ties
the lifecycle together.  See ``docs/SERVICE.md``.
"""

from .cache import ResultCache, default_cache_version
from .client import ServiceClient, ServiceError, ServiceUnavailable, backoff_delay
from .engine import ServiceEngine
from .faults import (
    CACHE_FAULTS,
    CLUSTER_FAULTS,
    DISPATCH_FAULTS,
    WORKER_FAULTS,
    FaultInjected,
    FaultKind,
    FaultPlan,
    FaultRule,
    fault_plan_from,
)
from .jobs import (
    HIGH_PRIORITY,
    LOW_PRIORITY,
    NORMAL_PRIORITY,
    AnalyzeJob,
    AttackJob,
    ExecJob,
    Job,
    MatrixJob,
    RegressReplayJob,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, render_prometheus
from .scheduler import (
    JobFailed,
    JobHandle,
    JobOutcome,
    JobStatus,
    QueueFull,
    Scheduler,
)
from .server import ServiceHTTPServer, create_server
from .tracing import JobTrace, TraceBuffer, TraceSpan
from .workers import (
    TransientWorkerError,
    WorkerPool,
    execute_job,
    execute_job_with_faults,
    register_worker,
    report_from_payload,
    report_payload,
)

__all__ = [
    "AnalyzeJob",
    "AttackJob",
    "CACHE_FAULTS",
    "CLUSTER_FAULTS",
    "Counter",
    "DISPATCH_FAULTS",
    "ExecJob",
    "FaultInjected",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "Gauge",
    "HIGH_PRIORITY",
    "Histogram",
    "Job",
    "JobFailed",
    "JobHandle",
    "JobOutcome",
    "JobStatus",
    "JobTrace",
    "LOW_PRIORITY",
    "MatrixJob",
    "MetricsRegistry",
    "NORMAL_PRIORITY",
    "QueueFull",
    "RegressReplayJob",
    "ResultCache",
    "Scheduler",
    "ServiceClient",
    "ServiceEngine",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceUnavailable",
    "TraceBuffer",
    "TraceSpan",
    "TransientWorkerError",
    "WORKER_FAULTS",
    "WorkerPool",
    "backoff_delay",
    "create_server",
    "default_cache_version",
    "execute_job",
    "execute_job_with_faults",
    "fault_plan_from",
    "register_worker",
    "render_prometheus",
    "report_from_payload",
    "report_payload",
]

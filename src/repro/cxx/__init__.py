"""The simulated C++ object model: types, classes, layout, vtables.

This package plays the role of the C++ compiler front-end and layout
pass: class declarations (:mod:`classdef`) are turned into byte-precise
record layouts (:mod:`layout`), vtables are emitted into the text image
(:mod:`text`, :mod:`vtable`), and :mod:`object_model` provides the typed
views through which simulated programs — and attacks — touch memory.
"""

from .classdef import ClassDef, Constructor, Field, VirtualMethod, make_class
from .layout import ClassType, FieldSlot, LayoutEngine, RecordLayout, class_type
from .object_model import CArrayView, Instance, ObjectContext, pointer_field_target
from .text import (
    FUNCTION_STUB_SIZE,
    NATIVE_STUB_MAGIC,
    EmittedVTable,
    FunctionEntry,
    TextImage,
)
from .types import (
    BOOL,
    CHAR,
    CHAR_PTR,
    DOUBLE,
    FLOAT,
    FUNC_PTR,
    INT,
    LONG_LONG,
    SHORT,
    UINT,
    VOID_PTR,
    ArrayType,
    BoolType,
    CharType,
    CType,
    DoubleType,
    FloatType,
    IntType,
    PointerType,
    array_of,
    scalar_by_name,
)
from .vtable import VTableBuilder

__all__ = [
    "ArrayType",
    "BOOL",
    "BoolType",
    "CArrayView",
    "CHAR",
    "CHAR_PTR",
    "CType",
    "CharType",
    "ClassDef",
    "ClassType",
    "class_type",
    "Constructor",
    "DOUBLE",
    "DoubleType",
    "EmittedVTable",
    "FLOAT",
    "FUNC_PTR",
    "FUNCTION_STUB_SIZE",
    "Field",
    "FieldSlot",
    "FloatType",
    "FunctionEntry",
    "INT",
    "Instance",
    "IntType",
    "LONG_LONG",
    "LayoutEngine",
    "NATIVE_STUB_MAGIC",
    "ObjectContext",
    "PointerType",
    "RecordLayout",
    "SHORT",
    "TextImage",
    "UINT",
    "VOID_PTR",
    "VTableBuilder",
    "VirtualMethod",
    "array_of",
    "make_class",
    "pointer_field_target",
    "scalar_by_name",
]

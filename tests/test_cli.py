"""Tests for the command-line front ends."""

import pytest

from repro.cli import analyze_main, attacks_main


class TestAttacksCli:
    def test_list(self, capsys):
        assert attacks_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "data-bss-overflow" in out
        assert "unprotected" in out

    def test_single_attack(self, capsys):
        assert attacks_main(["--attack", "data-bss-overflow"]) == 0
        out = capsys.readouterr().out
        assert "SUCCEEDED" in out

    def test_single_attack_verbose(self, capsys):
        attacks_main(["--attack", "stack-local-overwrite", "--verbose"])
        out = capsys.readouterr().out
        assert "padding_above_stud" in out

    def test_attack_under_defense(self, capsys):
        assert (
            attacks_main(
                ["--attack", "overflow-via-construction", "--env", "checked-placement"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "DETECTED by bounds-check" in out

    def test_unknown_env_rejected(self):
        with pytest.raises(SystemExit):
            attacks_main(["--env", "fortress"])

    def test_unknown_attack_rejected(self):
        with pytest.raises(KeyError):
            attacks_main(["--attack", "nope"])


class TestAnalyzeCli:
    def test_corpus_default(self, capsys):
        assert analyze_main([]) == 0
        out = capsys.readouterr().out
        assert "PN-OVERSIZE" in out
        assert "listing11-data-bss" in out

    def test_legacy_comparison(self, capsys):
        analyze_main(["--legacy"])
        out = capsys.readouterr().out
        assert "legacy-strict" in out

    def test_file_argument(self, tmp_path, capsys):
        source = tmp_path / "vuln.cpp"
        source.write_text(
            "class A { public: double d; };\n"
            "class B : public A { public: int x[8]; };\n"
            "A arena;\n"
            "void f() { B *b = new (&arena) B(); }\n"
        )
        exit_code = analyze_main([str(source)])
        out = capsys.readouterr().out
        assert "PN-OVERSIZE" in out
        assert exit_code == 1  # findings on user files → nonzero

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        source = tmp_path / "fine.cpp"
        source.write_text("void f() { int x = 1; }\n")
        assert analyze_main([str(source)]) == 0

"""E12 — memory leaks from placement new (§4.5, Listing 23).

Claims: each loop pass leaks exactly ``sizeof(GradStudent) −
sizeof(Student)`` bytes; the growth is linear until the heap dies; and
the paper's corrected disciplines (arena-owner protocol, equal-size
rule) leak nothing.
"""

from repro.attacks import UNPROTECTED, MemoryLeakAttack, TrackedLeakMeasurement
from repro.defenses import run_leak_comparison

from conftest import print_table


def run_experiment():
    growth_rows = []
    series = []
    for iterations in (10, 50, 100, 500):
        result = TrackedLeakMeasurement(iterations=iterations).run(UNPROTECTED)
        series.append((iterations, result.detail["total_leaked"]))
        growth_rows.append(
            (iterations, result.detail["leak_per_iteration"], result.detail["total_leaked"])
        )
    print_table(
        "E12a: leaked bytes vs iterations (Listing 23)",
        ["iterations", "leak/iter", "total leaked"],
        growth_rows,
    )

    exhaustion = MemoryLeakAttack(until_exhaustion=True).run(UNPROTECTED)
    comparison = run_leak_comparison(iterations=50)
    print_table(
        "E12b: leak disciplines (§4.5/§5.1 ablation)",
        ["discipline", "iterations", "leaked bytes", "refused"],
        [
            (o.discipline, o.iterations, o.leaked_bytes, o.refused)
            for o in comparison
        ]
        + [("until heap exhaustion", exhaustion.detail["iterations"], exhaustion.detail["total_leaked"], 0)],
    )
    return series, exhaustion, comparison


def test_e12_shape(benchmark):
    series, exhaustion, comparison = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    # Linear growth at exactly 16 bytes per iteration.
    for iterations, leaked in series:
        assert leaked == iterations * 16
    assert exhaustion.detail["heap_exhausted"]
    outcomes = {o.discipline: o for o in comparison}
    assert outcomes["as-written (Listing 23)"].leaked_bytes == 800
    assert outcomes["arena-owner protocol"].leaked_bytes == 0
    assert outcomes["equal-size-only"].leaked_bytes == 0

"""Unit and property tests for alignment arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ApiMisuseError
from repro.memory import align_down, align_up, is_aligned, is_power_of_two, padding_for

ALIGNMENTS = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 4096])
VALUES = st.integers(min_value=0, max_value=2**32)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 12, 100, -1, -4):
            assert not is_power_of_two(value)


class TestAlignUp:
    def test_already_aligned_is_identity(self):
        assert align_up(16, 8) == 16

    def test_rounds_to_next_multiple(self):
        assert align_up(17, 8) == 24
        assert align_up(1, 4) == 4

    def test_zero(self):
        assert align_up(0, 64) == 0

    def test_rejects_bad_alignment(self):
        with pytest.raises(ApiMisuseError):
            align_up(10, 3)

    def test_rejects_negative_value(self):
        with pytest.raises(ApiMisuseError):
            align_up(-8, 4)

    @given(VALUES, ALIGNMENTS)
    def test_result_is_aligned_and_minimal(self, value, alignment):
        result = align_up(value, alignment)
        assert result % alignment == 0
        assert result >= value
        assert result - value < alignment


class TestAlignDown:
    def test_rounds_down(self):
        assert align_down(17, 8) == 16
        assert align_down(7, 8) == 0

    @given(VALUES, ALIGNMENTS)
    def test_result_is_aligned_and_maximal(self, value, alignment):
        result = align_down(value, alignment)
        assert result % alignment == 0
        assert result <= value
        assert value - result < alignment

    @given(VALUES, ALIGNMENTS)
    def test_down_up_bracket(self, value, alignment):
        assert align_down(value, alignment) <= value <= align_up(value, alignment)


class TestPadding:
    def test_padding_reaches_alignment(self):
        assert padding_for(13, 8) == 3
        assert padding_for(16, 8) == 0

    @given(VALUES, ALIGNMENTS)
    def test_padding_is_complement(self, value, alignment):
        pad = padding_for(value, alignment)
        assert 0 <= pad < alignment
        assert (value + pad) % alignment == 0


class TestIsAligned:
    def test_basic(self):
        assert is_aligned(24, 8)
        assert not is_aligned(20, 8)
        assert is_aligned(5, 1)

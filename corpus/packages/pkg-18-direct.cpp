// package: pkg-18-direct
// imports: pkg-17-direct
class Small { public: char f0; double f1; int f2; };
class Big : public Small { public: float g0; float g1; short g2; };
void run() {
  Small arena;
  Big *p = new (&arena) Big();
}

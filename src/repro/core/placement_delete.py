"""Placement delete — the deallocation discipline C++ never gave us.

Section 4.5: *"Memory management is made harder by the fact that C++ does
not support a 'placement delete' while it supports 'placement new'."*
The paper recommends that programs using placement new define their own.
This module provides that definition, plus the arena-ownership protocol
the paper describes as the easiest correct option: keep the pointer to
the *arena* (at its true size), null it only after the arena itself is
released.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cxx.object_model import Instance
from ..errors import ApiMisuseError
from .new_expr import NewContext

#: A destructor body: ``(machine, instance) -> None``.
Destructor = Callable[[NewContext, Instance], None]


def placement_delete(
    ctx: NewContext,
    instance: Instance,
    destructor: Optional[Destructor] = None,
) -> None:
    """Destroy an object created by placement new **without** freeing.

    Runs the destructor (if any) and scrubs the object's extent so a
    later smaller placement cannot leak it (closing the Listing 22 hole).
    The storage itself still belongs to the arena's owner.
    """
    if destructor is not None:
        destructor(ctx, instance)
    ctx.space.fill(instance.address, instance.size, 0)


class ArenaOwner:
    """Owns one heap arena that placement news repeatedly re-use.

    Implements the paper's "easiest" correct protocol: the first pointer
    keeps the arena's *true* size; intermediate placements never free;
    :meth:`release` frees exactly the original allocation and only then
    nulls the pointer.  Using it as a context manager guarantees the
    release even on exceptions.
    """

    def __init__(self, ctx: NewContext, size: int, label: str = "arena") -> None:
        from ..memory.tracker import ArenaOrigin

        if size <= 0:
            raise ApiMisuseError(f"arena size must be positive, got {size}")
        self._ctx = ctx
        self._size = size
        self._label = label
        self._address: Optional[int] = ctx.heap.allocate(size)
        ctx.tracker.record(self._address, size, ArenaOrigin.HEAP_NEW, label=label)

    @property
    def address(self) -> int:
        """The arena's base address; raises after release."""
        if self._address is None:
            raise ApiMisuseError(f"arena '{self._label}' already released")
        return self._address

    @property
    def size(self) -> int:
        """The arena's true size — never shrunk by placements."""
        return self._size

    @property
    def released(self) -> bool:
        """True once the backing storage has been freed."""
        return self._address is None

    def release(self) -> None:
        """Free the arena at its *true* size and null the pointer."""
        if self._address is None:
            return
        # Undo any believed-size shrinkage before freeing, so the
        # tracker records zero leak for this arena.
        record = self._ctx.tracker.lookup(self._address)
        if record is not None:
            record.believed_size = record.true_size
        self._ctx.tracker.mark_freed(self._address)
        self._ctx.heap.free(self._address)
        self._address = None

    def __enter__(self) -> "ArenaOwner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

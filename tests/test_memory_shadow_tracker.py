"""Tests for shadow memory (red zones) and the allocation tracker."""

import pytest

from repro.errors import RedZoneViolation
from repro.memory import (
    AddressSpace,
    AllocationTracker,
    ArenaOrigin,
    SegmentKind,
    ShadowMemory,
    ShadowState,
)


@pytest.fixture
def space():
    return AddressSpace()


class TestShadowMemory:
    def test_states_after_protect(self, space):
        shadow = ShadowMemory(space, zone_size=8)
        base = space.segment(SegmentKind.BSS).base + 64
        shadow.protect_arena(base, 16)
        assert shadow.state_at(base) is ShadowState.ADDRESSABLE
        assert shadow.state_at(base + 15) is ShadowState.ADDRESSABLE
        assert shadow.state_at(base + 16) is ShadowState.RED_ZONE
        assert shadow.state_at(base - 1) is ShadowState.RED_ZONE
        assert shadow.state_at(base + 16 + 8) is ShadowState.UNTRACKED

    def test_armed_write_into_red_zone_raises(self, space):
        shadow = ShadowMemory(space, zone_size=8)
        base = space.segment(SegmentKind.BSS).base + 64
        shadow.protect_arena(base, 16)
        shadow.arm()
        with pytest.raises(RedZoneViolation):
            space.write(base + 16, b"\x00")

    def test_write_inside_arena_allowed(self, space):
        shadow = ShadowMemory(space, zone_size=8)
        base = space.segment(SegmentKind.BSS).base + 64
        shadow.protect_arena(base, 16)
        shadow.arm()
        space.write(base, b"x" * 16)
        assert not shadow.violations

    def test_record_only_mode(self, space):
        shadow = ShadowMemory(space, zone_size=8)
        base = space.segment(SegmentKind.BSS).base + 64
        shadow.protect_arena(base, 16)
        shadow.arm(halt_on_violation=False)
        space.write(base + 16, b"\x00")
        assert len(shadow.violations) == 1
        assert shadow.first_violation().address == base + 16

    def test_disarm_stops_checking(self, space):
        shadow = ShadowMemory(space, zone_size=8)
        base = space.segment(SegmentKind.BSS).base + 64
        shadow.protect_arena(base, 16)
        shadow.arm()
        shadow.disarm()
        space.write(base + 16, b"\x00")  # no raise
        assert not shadow.violations

    def test_adjacent_arenas_do_not_poison_each_other(self, space):
        shadow = ShadowMemory(space, zone_size=8)
        base = space.segment(SegmentKind.BSS).base + 64
        shadow.protect_arena(base, 16)
        shadow.protect_arena(base + 16, 16)  # red zone overlaps arena 2
        assert shadow.state_at(base + 16) is ShadowState.ADDRESSABLE

    def test_unprotect_clears(self, space):
        shadow = ShadowMemory(space, zone_size=8)
        base = space.segment(SegmentKind.BSS).base + 64
        pair = shadow.protect_arena(base, 16)
        shadow.unprotect_arena(pair)
        assert shadow.state_at(base) is ShadowState.UNTRACKED
        assert shadow.state_at(base + 16) is ShadowState.UNTRACKED


class TestAllocationTracker:
    def test_record_and_lookup(self):
        tracker = AllocationTracker()
        tracker.record(0x1000, 32, ArenaOrigin.HEAP_NEW, label="GradStudent")
        record = tracker.lookup(0x1000)
        assert record is not None
        assert record.true_size == 32
        assert record.believed_size == 32

    def test_relabel_shrinks_believed_size(self):
        tracker = AllocationTracker()
        tracker.record(0x1000, 32, ArenaOrigin.HEAP_NEW)
        tracker.relabel(0x1000, 16, label="Student")
        assert tracker.lookup(0x1000).believed_size == 16
        assert tracker.lookup(0x1000).true_size == 32

    def test_listing23_leak_accounting(self):
        # GradStudent(32) arena freed as Student(16): 16 bytes leak.
        tracker = AllocationTracker()
        tracker.record(0x1000, 32, ArenaOrigin.HEAP_NEW, label="GradStudent")
        tracker.relabel(0x1000, 16, label="Student")
        tracker.mark_freed(0x1000)
        assert tracker.leaked_bytes == 16

    def test_no_leak_when_freed_at_true_size(self):
        tracker = AllocationTracker()
        tracker.record(0x1000, 32, ArenaOrigin.HEAP_NEW)
        tracker.mark_freed(0x1000)
        assert tracker.leaked_bytes == 0

    def test_live_accounting(self):
        tracker = AllocationTracker()
        tracker.record(0x1000, 32, ArenaOrigin.HEAP_NEW)
        tracker.record(0x2000, 16, ArenaOrigin.POOL)
        assert tracker.live_bytes == 48
        assert tracker.outstanding_arenas == 2
        tracker.mark_freed(0x1000)
        assert tracker.live_bytes == 16

    def test_relabel_unknown_address_is_noop(self):
        tracker = AllocationTracker()
        assert tracker.relabel(0x9999, 8) is None

    def test_mark_freed_unknown_is_noop(self):
        tracker = AllocationTracker()
        assert tracker.mark_freed(0x9999) is None

    def test_report_mentions_leak(self):
        tracker = AllocationTracker()
        tracker.record(0x1000, 32, ArenaOrigin.HEAP_NEW, label="g")
        tracker.relabel(0x1000, 16)
        tracker.mark_freed(0x1000)
        assert "16B" in tracker.report()

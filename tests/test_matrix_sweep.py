"""The repro-matrix sweep: determinism, drift gating, CLI, coverage.

The acceptance property is byte-identity: the same sweep must encode to
the same bytes sequentially, fanned over the service engine at any
worker count, and on either execution engine.  These tests pin that on
a small row subset (the full sweep is CI's job) plus the order-
independence and index fixes that rode along.
"""

import json

import pytest

from repro.attacks import ConstructionOverflowAttack, DataBssOverflowAttack
from repro.cli import matrix_main
from repro.defenses import ALL_DEFENSES, MatrixCell, evaluate_matrix
from repro.matrix import (
    attack_rows,
    build_report,
    canonical_report_json,
    collect_rows,
    diff_reports,
    render_report,
    run_sweep,
    seed_rows,
)
from repro.service import ServiceEngine

#: Small-but-representative slice: three gallery attacks, two program
#: rows, and the defenses whose cells exercise every outcome kind.
SUBSET_DEFENSES = ("none", "checked-placement", "vrt", "memory-tagging")


def _subset_rows():
    return attack_rows()[:3] + seed_rows()[:2]


@pytest.fixture(scope="module")
def subset_report():
    return run_sweep(rows=_subset_rows(), defenses=SUBSET_DEFENSES)


class TestRowCollection:
    def test_attack_rows_follow_gallery_order(self):
        from repro.attacks import all_attacks

        assert [r.row_id for r in attack_rows()] == [s.name for s in all_attacks()]

    def test_seed_rows_are_vulnerable_twins_with_sources(self):
        rows = seed_rows()
        assert rows
        for row in rows:
            assert row.kind == "seed"
            assert row.source
            assert row.is_program

    def test_collect_rows_includes_regress_bundles(self):
        rows = collect_rows(regress_dir="corpus/regress")
        kinds = {row.kind for row in rows}
        assert kinds == {"attack", "seed", "regress"}

    def test_collect_rows_without_store(self):
        rows = collect_rows(regress_dir=None)
        assert {row.kind for row in rows} == {"attack", "seed"}


class TestByteIdentity:
    def test_fanned_sweep_matches_sequential(self, subset_report):
        sequential = canonical_report_json(subset_report)
        for workers in (1, 4):
            with ServiceEngine(workers=workers, use_cache=False) as engine:
                fanned = engine.matrix_sweep(
                    rows=_subset_rows(), defenses=SUBSET_DEFENSES
                )
            assert canonical_report_json(fanned) == sequential, (
                f"jobs={workers} diverged from sequential"
            )

    def test_bytecode_engine_matches_ast(self, subset_report):
        bytecode = run_sweep(
            rows=_subset_rows(), defenses=SUBSET_DEFENSES, engine="bytecode"
        )
        assert canonical_report_json(bytecode) == canonical_report_json(
            subset_report
        )

    def test_repeated_sweeps_are_stable(self, subset_report):
        again = run_sweep(rows=_subset_rows(), defenses=SUBSET_DEFENSES)
        assert canonical_report_json(again) == canonical_report_json(subset_report)

    def test_report_carries_no_engine_or_timing_fields(self, subset_report):
        assert set(subset_report) == {
            "schema",
            "defenses",
            "rows",
            "attacks_succeeding",
            "risks",
        }

    def test_unknown_defense_rejected_up_front(self):
        with pytest.raises(KeyError):
            run_sweep(rows=_subset_rows(), defenses=("none", "asan"))


class TestCommittedBaseline:
    """The CI gate's contract with corpus/matrix/baseline.json."""

    @pytest.fixture(scope="class")
    def baseline(self):
        with open("corpus/matrix/baseline.json", encoding="utf-8") as handle:
            return json.load(handle)

    def test_baseline_covers_the_full_roster(self, baseline):
        assert baseline["defenses"] == [d.name for d in ALL_DEFENSES]

    def test_each_modern_mitigation_beats_the_seed_columns(self, baseline):
        # The acceptance criterion: every modern mitigation stops attack
        # classes the seed-era defenses miss, visibly in the totals.
        totals = baseline["attacks_succeeding"]
        seed_best = min(
            totals[name]
            for name in ("none", "stackguard", "nx-stack", "sanitize-on-reuse")
        )
        assert totals["vrt"] < seed_best
        assert totals["memory-tagging"] < seed_best
        assert totals["shadow-ret-stack"] < totals["none"]

    def test_checked_placement_cannot_reach_interpreted_programs(self, baseline):
        # §5's legacy-code gap, mechanically: the source fix shows
        # ATTACK-WINS on every seed program while the machine-level VRT
        # detects them.
        seed_program_rows = [r for r in baseline["rows"] if r["kind"] == "seed"]
        assert seed_program_rows
        for row in seed_program_rows:
            if row["id"] == "dos-loop":
                continue  # resource exhaustion, not a placement overflow
            assert row["cells"]["checked-placement"] == "ATTACK-WINS"
        vrt_detected = [
            r["id"]
            for r in seed_program_rows
            if r["cells"]["vrt"] == "detected(vrt)"
        ]
        # Every overflow family is caught; only the in-bounds residue
        # leak (`leak`) stays invisible to a bounds table.
        assert set(vrt_detected) == {
            r["id"] for r in seed_program_rows if r["id"] != "leak"
        }

    def test_risks_carry_matrix_cell_evidence(self, baseline):
        assert baseline["risks"]
        assert all("risk_score" in risk or risk for risk in baseline["risks"])


class TestDiffGate:
    def test_identical_reports_have_no_drift(self, subset_report):
        assert diff_reports(subset_report, subset_report) == []

    def test_cell_outcome_change_is_drift(self, subset_report):
        mutated = json.loads(canonical_report_json(subset_report))
        mutated["rows"][0]["cells"]["vrt"] = "ATTACK-WINS"
        drift = diff_reports(subset_report, mutated)
        assert len(drift) == 1
        assert "vrt" in drift[0] and "->" in drift[0]

    def test_vanished_row_is_drift(self, subset_report):
        shrunk = json.loads(canonical_report_json(subset_report))
        dropped = shrunk["rows"].pop()
        drift = diff_reports(subset_report, shrunk)
        assert any(dropped["id"] in line and "missing" in line for line in drift)

    def test_new_row_is_drift(self, subset_report):
        grown = json.loads(canonical_report_json(subset_report))
        grown["rows"].append({"kind": "attack", "id": "novel", "cells": {}})
        drift = diff_reports(subset_report, grown)
        assert any("new row" in line for line in drift)

    def test_roster_change_is_drift(self, subset_report):
        changed = json.loads(canonical_report_json(subset_report))
        changed["defenses"] = changed["defenses"][:-1]
        assert any(
            "roster" in line for line in diff_reports(subset_report, changed)
        )


class TestReportShape:
    def test_totals_count_wins_per_defense(self, subset_report):
        for name in SUBSET_DEFENSES:
            wins = sum(
                1
                for row in subset_report["rows"]
                if row["cells"][name] == "ATTACK-WINS"
            )
            assert subset_report["attacks_succeeding"][name] == wins

    def test_render_lists_rows_and_totals(self, subset_report):
        text = render_report(subset_report)
        assert "rows where the attack wins" in text
        for row in subset_report["rows"]:
            assert f"{row['kind']}:{row['id']}" in text

    def test_build_report_consumes_cells_in_row_major_order(self):
        rows = _subset_rows()[:2]
        names = ["none", "vrt"]
        cells = [
            {
                "summary": f"cell-{i}",
                "succeeded": False,
                "detected_by": None,
                "crashed": False,
                "row_kind": row.kind,
                "row_id": row.row_id,
                "defense": name,
            }
            for i, (row, name) in enumerate(
                [(r, n) for r in rows for n in names]
            )
        ]
        report = build_report(rows, names, cells)
        assert report["rows"][0]["cells"] == {"none": "cell-0", "vrt": "cell-1"}
        assert report["rows"][1]["cells"] == {"none": "cell-2", "vrt": "cell-3"}


class TestEvaluationMatrixIndex:
    """Satellite fixes: O(1) cell lookup and order-independent cells."""

    def _small_matrix(self):
        return evaluate_matrix(
            [ConstructionOverflowAttack(), DataBssOverflowAttack()],
            ALL_DEFENSES,
        )

    def test_cell_lookup_matches_linear_scan(self):
        matrix = self._small_matrix()
        for cell in matrix.cells:
            assert matrix.cell(cell.attack, cell.defense) is cell

    def test_direct_append_is_tolerated(self):
        # The pre-index public surface let callers append to ``cells``;
        # the lazy reindex keeps them working.
        matrix = self._small_matrix()
        stray = MatrixCell(
            attack="stray-attack",
            defense="none",
            result=matrix.cells[0].result,
        )
        matrix.cells.append(stray)
        assert matrix.cell("stray-attack", "none") is stray
        assert "stray-attack" in matrix.render()

    def test_scenario_order_does_not_change_outcomes(self):
        scenarios = [ConstructionOverflowAttack(), DataBssOverflowAttack()]
        forward = evaluate_matrix(scenarios, ALL_DEFENSES)
        backward = evaluate_matrix(list(reversed(scenarios)), ALL_DEFENSES)
        for cell in forward.cells:
            twin = backward.cell(cell.attack, cell.defense)
            assert twin is not None
            assert twin.summary == cell.summary, (
                f"{cell.attack}/{cell.defense} depends on scenario order"
            )

    def test_fresh_environment_is_a_distinct_object(self):
        for defense in ALL_DEFENSES:
            env = defense.fresh_environment()
            assert env is not defense.environment
            assert env.machine_config is not defense.environment.machine_config
            assert env.label == defense.environment.label


class TestThreatCoverage:
    """Satellite: defenses/detections/outcomes cannot ship unmapped."""

    def test_registry_has_no_coverage_gaps(self):
        from repro.score.threats import coverage_gaps

        assert coverage_gaps() == {}

    def test_every_defense_has_a_mitigation_mapping(self):
        from repro.score.threats import DEFENSE_MITIGATIONS

        assert set(DEFENSE_MITIGATIONS) == {d.name for d in ALL_DEFENSES}

    def test_every_detection_label_credits_a_real_defense(self):
        from repro.attacks.base import ALL_DETECTION_LABELS
        from repro.score.threats import DETECTION_DEFENSES

        assert set(DETECTION_DEFENSES) == set(ALL_DETECTION_LABELS)
        roster = {d.name for d in ALL_DEFENSES}
        for label, defense_name in DETECTION_DEFENSES.items():
            assert defense_name in roster, f"{label} credits unknown {defense_name}"

    def test_every_matrix_outcome_classifies(self):
        from repro.score.threats import outcome_class

        assert outcome_class("ATTACK-WINS") == "win"
        assert outcome_class("detected(vrt)") == "stopped"
        assert outcome_class("detected(memory-tagging)") == "stopped"
        assert outcome_class("crashed") == "stopped"
        assert outcome_class("prevented") == "stopped"
        assert outcome_class("invalid") == "unjudged"
        assert outcome_class("gibberish") is None


class TestMatrixCli:
    def test_run_json_round_trips(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = matrix_main(
            [
                "run",
                "--jobs",
                "0",
                "--no-regress",
                "--defenses",
                "none,vrt",
                "--json",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out.strip()
        assert printed == out.read_text().strip()
        report = json.loads(printed)
        assert report["defenses"] == ["none", "vrt"]

    def test_diff_clean_exits_zero(self, tmp_path, capsys, subset_report):
        path = tmp_path / "r.json"
        path.write_text(canonical_report_json(subset_report))
        assert matrix_main(["diff", str(path), str(path)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_drift_exits_one(self, tmp_path, capsys, subset_report):
        base = tmp_path / "base.json"
        base.write_text(canonical_report_json(subset_report))
        mutated = json.loads(canonical_report_json(subset_report))
        mutated["rows"][0]["cells"]["none"] = "prevented"
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(mutated))
        assert matrix_main(["diff", str(base), str(cur)]) == 1
        assert "->" in capsys.readouterr().out

    def test_diff_missing_file_fails(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert matrix_main(["diff", missing, missing]) == 2
        assert "no such report" in capsys.readouterr().err

    def test_report_renders_saved_sweep(self, tmp_path, capsys, subset_report):
        path = tmp_path / "r.json"
        path.write_text(canonical_report_json(subset_report))
        assert matrix_main(["report", str(path)]) == 0
        assert "rows where the attack wins" in capsys.readouterr().out

    def test_negative_jobs_rejected(self, capsys):
        assert matrix_main(["run", "--jobs", "-1"]) == 2

    def test_unknown_defense_fails_cleanly(self, capsys):
        code = matrix_main(
            ["run", "--jobs", "0", "--no-regress", "--defenses", "asan"]
        )
        assert code == 2
        assert "asan" in capsys.readouterr().err

"""``python -m repro.fuzz`` — the repro-fuzz front end."""

import sys

from ..cli import fuzz_main

if __name__ == "__main__":
    sys.exit(fuzz_main())

"""The non-placement ``new`` / ``new[]`` / ``delete`` expressions.

These allocate from the simulated heap and then run *construction* —
writing vptrs and invoking the class's constructor body.  Construction is
shared with placement new (:mod:`repro.core.placement`); the only
difference between the two expressions is where the storage comes from,
exactly as in C++.
"""

from __future__ import annotations

from typing import Any, Protocol

from ..cxx.classdef import ClassDef
from ..cxx.layout import LayoutEngine
from ..cxx.object_model import CArrayView, Instance
from ..cxx.types import CType
from ..cxx.vtable import VTableBuilder
from ..errors import ApiMisuseError
from ..memory.address_space import AddressSpace
from ..memory.heap import HeapAllocator
from ..memory.tracker import AllocationTracker, ArenaOrigin


class NewContext(Protocol):
    """Environment required by the allocation expressions.

    :class:`repro.runtime.machine.Machine` satisfies this protocol.
    """

    @property
    def space(self) -> AddressSpace:
        """The simulated address space."""

    @property
    def layouts(self) -> LayoutEngine:
        """The layout engine."""

    @property
    def heap(self) -> HeapAllocator:
        """The process heap."""

    @property
    def tracker(self) -> AllocationTracker:
        """Allocation/leak tracker."""

    @property
    def vtables(self) -> VTableBuilder:
        """VTable builder over the text image."""


def construct(ctx: NewContext, class_def: ClassDef, address: int, *args: Any) -> Instance:
    """Run construction of ``class_def`` at ``address``.

    Mirrors a compiled constructor: install the vtable pointer(s) first,
    then execute the constructor body.  No storage checks of any kind —
    callers (``new`` vs placement new) differ only in where ``address``
    came from.
    """
    layout = ctx.layouts.layout_of(class_def)
    instance = Instance(ctx, class_def, address)
    if layout.has_vptr:
        table = ctx.vtables.ensure(class_def)
        for vptr_offset in layout.vptr_offsets:
            ctx.space.write_pointer(address + vptr_offset, table.address)
    body = class_def.constructor
    if body is not None:
        body(ctx, instance, *args)
    elif len(args) == 1 and isinstance(args[0], Instance):
        copy_body = class_def.copy_constructor
        if copy_body is not None:
            copy_body(ctx, instance, args[0])
        else:
            _default_shallow_copy(ctx, instance, args[0])
    elif args:
        raise ApiMisuseError(
            f"class {class_def.name} has no constructor taking {len(args)} args"
        )
    return instance


def _default_shallow_copy(ctx: NewContext, target: Instance, source: Instance) -> None:
    """The compiler-provided copy constructor: a member-wise (here:
    byte-wise) shallow copy of the *source's static type* extent.

    When the source is an instance of a larger subclass viewed through
    its own type, copying ``source.size`` bytes into a smaller arena is
    the Listing 7 overflow.
    """
    data = ctx.space.read(source.address, source.size)
    ctx.space.write(target.address, data)
    # Re-install the target class's vtable pointer (C++ copy construction
    # never copies the vptr across types).
    layout = target.layout
    if layout.has_vptr:
        table = ctx.vtables.ensure(target.class_def)
        for vptr_offset in layout.vptr_offsets:
            ctx.space.write_pointer(target.address + vptr_offset, table.address)


def new_object(ctx: NewContext, class_def: ClassDef, *args: Any) -> Instance:
    """``new T(args...)`` — heap storage plus construction."""
    size = ctx.layouts.sizeof(class_def)
    address = ctx.heap.allocate(size)
    ctx.tracker.record(address, size, ArenaOrigin.HEAP_NEW, label=class_def.name)
    return construct(ctx, class_def, address, *args)


def new_array(ctx: NewContext, element: CType, count: int) -> CArrayView:
    """``new T[count]`` for a scalar element type."""
    if count <= 0:
        raise ApiMisuseError(f"new[] length must be positive, got {count}")
    size = element.size * count
    address = ctx.heap.allocate(size)
    ctx.tracker.record(
        address, size, ArenaOrigin.HEAP_NEW, label=f"{element.name}[{count}]"
    )
    return CArrayView(ctx, element, count, address)


def delete_object(ctx: NewContext, instance: Instance) -> None:
    """``delete ptr`` — destructor semantics are the caller's business
    (the simulated classes keep destructors trivial, as the paper's do)."""
    ctx.tracker.mark_freed(instance.address)
    ctx.heap.free(instance.address)


def delete_array(ctx: NewContext, view: CArrayView) -> None:
    """``delete[] ptr``."""
    ctx.tracker.mark_freed(view.address)
    ctx.heap.free(view.address)

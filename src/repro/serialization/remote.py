"""Untrusted object producers: the third-party services of Section 3.2.

``service.getNames()`` in Listing 5 — *"returns tainted list"* whose
length ``n`` is *"maliciously changed"* — and the ``remoteobj`` passed
to ``addStudent`` in Listings 6–8 both come from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..taint.engine import TaintLabel, TaintedValue
from .json_codec import RemoteObject


@dataclass
class RemoteService:
    """A (possibly malicious) remote peer producing objects and lists."""

    name: str = "thirdparty"
    malicious: bool = False

    def get_names(
        self, honest_count: int, inflated_count: Optional[int] = None
    ) -> TaintedValue:
        """Listing 5's ``service.getNames()``.

        An honest service returns ``honest_count`` names; a malicious one
        returns ``inflated_count`` (defaults to 4× as many), and — the
        paper's point — the receiving program reads the length *from the
        data*, not from its own expectations.
        """
        count = honest_count
        if self.malicious:
            count = inflated_count if inflated_count is not None else honest_count * 4
        names = [f"student{i:03d}" for i in range(count)]
        return TaintedValue.from_source(names, TaintLabel.NETWORK)

    def get_student(
        self,
        gpa: float = 3.0,
        year: int = 2010,
        semester: int = 1,
        extra_fields: Optional[dict] = None,
        course_count: Optional[int] = None,
    ) -> RemoteObject:
        """A serialized Student-like object (Listings 6–7).

        A malicious service attaches surplus fields and a lying
        ``n``/course count — the knobs the copy loops trust.
        """
        fields: dict = {"gpa": gpa, "year": year, "semester": semester}
        if self.malicious:
            fields["n"] = course_count if course_count is not None else 64
            fields["courseid"] = list(range(9000, 9000 + fields["n"]))
            if extra_fields:
                fields.update(extra_fields)
        else:
            fields["n"] = course_count if course_count is not None else 2
            fields["courseid"] = [101, 102][: fields["n"]]
        labels = (
            frozenset({TaintLabel.REMOTE_OBJECT})
            if self.malicious
            else frozenset()
        )
        return RemoteObject(class_name="Student", fields=fields, labels=labels)

    def get_aggregate(self, payload_words: int) -> RemoteObject:
        """Listing 8's ``Someclass`` aggregate whose size the remote end
        inflates (indirect construction)."""
        return RemoteObject(
            class_name=f"Someclass{payload_words}",
            fields={"payload": list(range(payload_words))},
            labels=frozenset({TaintLabel.REMOTE_OBJECT})
            if self.malicious
            else frozenset(),
        )


def honest_service() -> RemoteService:
    """A well-behaved peer (the control condition)."""
    return RemoteService(name="registrar", malicious=False)


def malicious_service() -> RemoteService:
    """The attacker-run peer."""
    return RemoteService(name="evil-webservice", malicious=True)

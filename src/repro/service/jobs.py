"""Typed job specifications for the service layer.

A job is a frozen, content-addressed description of one unit of work:
analyzing a source file, running an attack under a defense environment,
evaluating the attack × defense matrix, or executing a program on the
simulated machine.  Two jobs with the same payload have the same
:meth:`Job.key`, which is what the result cache and the scheduler's
deduplication key on — the hash covers the job kind plus every payload
field, canonically JSON-encoded, so it is stable across processes and
interpreter runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

#: Default scheduler priority (lower numbers run first).
NORMAL_PRIORITY = 10
#: Priority for latency-sensitive work (interactive API requests).
HIGH_PRIORITY = 1
#: Priority for bulk background sweeps.
LOW_PRIORITY = 100


def canonical_json(payload: dict) -> str:
    """Deterministic encoding used for job keys and cache files."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Job:
    """Base class: a hashable, cacheable unit of service work."""

    #: Worker-registry key (see :mod:`repro.service.workers`).
    KIND = "job"
    #: Whether results may be served from the result cache.  Jobs whose
    #: outcome depends on randomized machine state (ASLR, random
    #: canaries) should disable this.
    CACHEABLE = True

    def payload(self) -> dict:
        """The JSON-able argument dict handed to the worker function."""
        return asdict(self)

    def key(self) -> str:
        """Deterministic content-hash identity for cache/dedup lookups."""
        digest = hashlib.sha256(
            (self.KIND + "\n" + canonical_json(self.payload())).encode()
        ).hexdigest()
        return f"{self.KIND}-{digest[:20]}"


@dataclass(frozen=True)
class AnalyzeJob(Job):
    """Run the placement-new detector over one MiniC++ source."""

    source: str
    label: str = ""
    legacy: bool = False

    KIND = "analyze"


@dataclass(frozen=True)
class ScoreJob(Job):
    """Score one package's source through the threat registry.

    ``registry`` carries the threat-registry digest at submit time, so
    cached results are invalidated when the registry changes even
    though the source text did not.
    """

    source: str
    label: str = ""
    registry: str = ""

    KIND = "score"


@dataclass(frozen=True)
class AttackJob(Job):
    """Run one gallery attack under one defense environment."""

    attack: str
    env: str = "unprotected"

    KIND = "attack"


@dataclass(frozen=True)
class MatrixJob(Job):
    """Evaluate the E14 attack × defense matrix (or a sub-matrix)."""

    attacks: tuple = ()  # attack names; empty = the whole gallery
    defenses: tuple = ()  # defense names; empty = ALL_DEFENSES

    KIND = "matrix"


@dataclass(frozen=True)
class MatrixCellJob(Job):
    """Evaluate one sweep cell: a row (gallery attack or runnable
    program) under one defense.

    Cacheable: the evaluation is pure — fresh machine, seeded canaries,
    fixed stdin — so a cell's outcome is a function of its payload and
    the code version the cache already keys on.  Attack rows normalize
    ``engine`` to ``""`` (the gallery doesn't execute MiniC++), so both
    engines share one cache entry.
    """

    row_kind: str = "attack"  # "attack" | "seed" | "regress"
    row_id: str = ""
    source: str = ""
    stdin: tuple = ()
    defense: str = "none"
    engine: str = ""  # "" for attack rows; "ast" | "bytecode" otherwise
    step_budget: int = 50_000

    KIND = "matrix-cell"


@dataclass(frozen=True)
class FuzzCampaignJob(Job):
    """One batch of a differential fuzzing campaign (see ``repro.fuzz``).

    The payload is a full snapshot — campaign seed, round/batch
    coordinates, corpus, and coverage baseline — so the worker is pure:
    same payload, same batch result.  Still not cacheable, because
    campaigns intentionally re-run batches against evolving snapshots
    and the result cache would pin a stale corpus.
    """

    seed: int = 1
    round: int = 0
    batch: int = 0
    iterations: int = 50
    corpus: tuple = ()  # (source, stdin, family, label) tuples
    coverage: tuple = ()  # coverage keys already reached
    protected: int = 0  # leading corpus entries exempt from eviction
    step_budget: int = 50_000
    canary: bool = True
    max_corpus: int = 256
    engine: str = "ast"  # "ast" | "bytecode" | "both"

    KIND = "fuzz-campaign"
    CACHEABLE = False


@dataclass(frozen=True)
class RegressReplayJob(Job):
    """Replay one chunk of regression bundles (see ``repro.regress``).

    The payload carries the bundles themselves (canonical JSON strings),
    not a store path, so the worker is pure and process-backend safe:
    same bundles, same replay verdicts.  Not cacheable — the whole point
    of a replay is to re-judge the bundle against the *current* detector
    and simulator, never a remembered verdict.
    """

    bundles: tuple = ()  # canonical-JSON bundle documents
    check_versions: bool = True
    engine: str = "ast"  # "ast" | "bytecode" | "both"

    KIND = "regress-replay"
    CACHEABLE = False


@dataclass(frozen=True)
class ExecJob(Job):
    """Execute MiniC++ source on a fresh simulated machine.

    Not cacheable: random canaries and accumulated machine entropy make
    repeated executions legitimately observable as distinct runs.
    """

    source: str
    entry: str = "main"
    args: tuple = ()
    stdin: tuple = ()
    canary: bool = False
    engine: str = "ast"  # "ast" | "bytecode"

    KIND = "exec"
    CACHEABLE = False

#!/usr/bin/env python
"""Forensics on an information leak (paper §4.3, Listings 21–22).

Reads a password file into a pool, lets a "user" place a short string
over it, and then plays the investigator: dumps what ``store()`` would
exfiltrate, measures the residue, and shows how full and partial
sanitization (§5.1) change the picture — including the padding-hole
subtlety the paper warns about.

Run:  python examples/memory_forensics.py
"""

from repro import Machine
from repro.core import (
    leaked_bytes,
    placement_new_array,
    residual_ranges,
    sanitize,
    sanitize_residue,
)
from repro.cxx import CHAR
from repro.runtime import password_file


def dump(machine: Machine, address: int, length: int, width: int = 32) -> None:
    data = machine.space.read(address, length)
    for offset in range(0, length, width):
        chunk = data[offset : offset + width]
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        print(f"  {address + offset:#010x}  {text}")


def scenario(label: str, sanitizer) -> None:
    machine = Machine()
    machine.files.add(password_file())
    pool = machine.static_array(CHAR, 256, "mem_pool")
    secret = machine.files.open("/etc/passwd").read(256)
    machine.space.write(pool.address, secret[:256].ljust(256, b"\x00"))

    if sanitizer is not None:
        sanitizer(machine, pool.address)

    userdata = placement_new_array(machine, pool.address, CHAR, 256)
    machine.space.strncpy(userdata.address, "bob", 4)

    stored = machine.space.read(userdata.address, 256)
    residue = leaked_bytes(
        machine.space, pool.address, 256, occupied=[(pool.address, 4)], secret=secret[:256].ljust(256, b"\x00")
    )
    print(f"— {label} —")
    print(f"  store(userdata) would ship 256 bytes; {residue} of them are "
          "still password-file bytes")
    print("  first 96 bytes of what leaves the process:")
    dump(machine, userdata.address, 96)
    print()


def main() -> None:
    scenario("vulnerable (Listing 21, no sanitization)", None)
    scenario(
        "full sanitization (§5.1's recommendation)",
        lambda machine, base: sanitize(machine.space, base, 256),
    )
    scenario(
        "partial sanitization of the residue only",
        lambda machine, base: [
            sanitize_residue(machine.space, base, 256, occupied=[(base, 4)])
        ],
    )

    print("— the paper's padding caveat, quantified —")
    print(
        "residual ranges when the new occupant uses bytes [0,8) and [16,20)\n"
        "of a 32-byte arena (everything else still holds old data):"
    )
    for base, length in residual_ranges(0, 32, occupied=[(0, 8), (16, 4)]):
        print(f"  bytes [{base}, {base + length})  — {length} bytes of residue")


if __name__ == "__main__":
    main()

"""The text segment image: function entry points, vtables, rodata.

A real compiler emits machine code for each function and constant vtables
into the text/rodata sections; attacks like arc injection (Section 3.6.2)
and vtable subterfuge (Section 3.8.2) work because those are *addresses*
an overflow can redirect control to.  :class:`TextImage` gives every
simulated function a genuine address inside the text segment (marked with
a recognizable stub) and emits vtables as arrays of those addresses, so
attacker-written pointer values resolve exactly the way the paper
describes: a valid function address → that function runs; garbage → a
fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ApiMisuseError
from ..memory.address_space import AddressSpace
from ..memory.alignment import align_up
from ..memory.encoding import POINTER_SIZE
from ..memory.segments import SegmentKind

#: Marker byte sequence at every native function entry ("NATV").
NATIVE_STUB_MAGIC = b"NATV"
#: Bytes reserved per function entry.
FUNCTION_STUB_SIZE = 16


@dataclass(frozen=True)
class FunctionEntry:
    """A simulated function living at a text-segment address."""

    name: str
    address: int
    callable: Callable
    privileged: bool = False
    description: str = ""


@dataclass(frozen=True)
class EmittedVTable:
    """A vtable emitted into the text image."""

    class_name: str
    address: int
    slots: tuple[tuple[str, int], ...]  # (method name, entry address)

    def slot_address(self, index: int) -> int:
        """Address of the ``index``-th slot (the word holding the fn ptr)."""
        return self.address + index * POINTER_SIZE

    def entry_for(self, method_name: str) -> int:
        """The function address stored for ``method_name``."""
        for name, entry in self.slots:
            if name == method_name:
                return entry
        raise ApiMisuseError(
            f"vtable for {self.class_name} has no slot '{method_name}'"
        )


class TextImage:
    """Allocates text-segment space for functions, vtables, and rodata."""

    def __init__(self, space: AddressSpace) -> None:
        self._space = space
        segment = space.segment(SegmentKind.TEXT)
        self._cursor = segment.base
        self._end = segment.end
        self._functions_by_name: dict[str, FunctionEntry] = {}
        self._functions_by_address: dict[int, FunctionEntry] = {}
        self._vtables_by_class: dict[str, EmittedVTable] = {}
        self._vtables_by_address: dict[int, EmittedVTable] = {}

    def _reserve(self, size: int, alignment: int = 4) -> int:
        address = align_up(self._cursor, alignment)
        if address + size > self._end:
            raise ApiMisuseError("text segment exhausted")
        self._cursor = address + size
        return address

    # -- functions ----------------------------------------------------------

    def register_function(
        self,
        name: str,
        callable_: Callable,
        privileged: bool = False,
        description: str = "",
    ) -> FunctionEntry:
        """Give ``callable_`` a text address; idempotent per name."""
        existing = self._functions_by_name.get(name)
        if existing is not None:
            return existing
        address = self._reserve(FUNCTION_STUB_SIZE, alignment=16)
        index = len(self._functions_by_name)
        stub = NATIVE_STUB_MAGIC + index.to_bytes(4, "little")
        # Segments are created non-writable for text; write via the raw
        # backing to emit the stub (the "loader" is allowed to).
        segment = self._space.segment(SegmentKind.TEXT)
        segment._data[address - segment.base : address - segment.base + len(stub)] = stub
        entry = FunctionEntry(
            name=name,
            address=address,
            callable=callable_,
            privileged=privileged,
            description=description,
        )
        self._functions_by_name[name] = entry
        self._functions_by_address[address] = entry
        return entry

    def function_named(self, name: str) -> Optional[FunctionEntry]:
        """Look a function up by symbol name."""
        return self._functions_by_name.get(name)

    def function_at(self, address: int) -> Optional[FunctionEntry]:
        """Look a function up by entry address (exact match only —
        jumping into the middle of a function is a fault, as on x86 it
        would decode garbage)."""
        return self._functions_by_address.get(address)

    @property
    def functions(self) -> tuple[FunctionEntry, ...]:
        """All registered functions."""
        return tuple(self._functions_by_name.values())

    # -- vtables ---------------------------------------------------------------

    def emit_vtable(
        self, class_name: str, slots: list[tuple[str, int]]
    ) -> EmittedVTable:
        """Write a vtable (array of function addresses) into text."""
        existing = self._vtables_by_class.get(class_name)
        if existing is not None:
            return existing
        size = max(len(slots), 1) * POINTER_SIZE
        address = self._reserve(size, alignment=POINTER_SIZE)
        segment = self._space.segment(SegmentKind.TEXT)
        for index, (_, entry_address) in enumerate(slots):
            offset = address - segment.base + index * POINTER_SIZE
            segment._data[offset : offset + POINTER_SIZE] = entry_address.to_bytes(
                POINTER_SIZE, "little"
            )
        table = EmittedVTable(
            class_name=class_name, address=address, slots=tuple(slots)
        )
        self._vtables_by_class[class_name] = table
        self._vtables_by_address[address] = table
        return table

    def vtable_for(self, class_name: str) -> Optional[EmittedVTable]:
        """The emitted vtable of ``class_name``, if any."""
        return self._vtables_by_class.get(class_name)

    def vtable_at(self, address: int) -> Optional[EmittedVTable]:
        """Reverse lookup by vtable base address."""
        return self._vtables_by_address.get(address)

    # -- rodata -------------------------------------------------------------

    def emit_rodata(self, data: bytes, alignment: int = 4) -> int:
        """Place constant bytes (e.g. string literals) into text."""
        address = self._reserve(len(data), alignment)
        segment = self._space.segment(SegmentKind.TEXT)
        segment._data[address - segment.base : address - segment.base + len(data)] = data
        return address

"""VTable-pointer integrity checking (a CFI-style mitigation).

The §3.8.2 subterfuge works because a virtual call trusts whatever word
sits at the object's vptr slot.  This defense validates, at every
dispatch, that the vptr is the address of a vtable the program actually
emitted — the forward-edge half of control-flow integrity, applied to
exactly the paper's attack.  Like the shadow stack it wraps the machine;
the metadata (the set of legitimate vtables) lives outside simulated
memory, as a loader-protected section would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cxx.object_model import Instance
from ..errors import SimulatedProcessError
from ..runtime.machine import Machine


class VtableIntegrityViolation(SimulatedProcessError):
    """A virtual call through a vptr that is no emitted vtable."""

    def __init__(self, class_name: str, vptr: int) -> None:
        self.class_name = class_name
        self.vptr = vptr
        super().__init__(
            f"vtable integrity violation: {class_name} object's vptr "
            f"{vptr:#010x} is not a known vtable"
        )


@dataclass
class VtableIntegrityGuard:
    """Wraps ``machine.virtual_call`` with a legitimacy check."""

    machine: Machine
    checks: int = 0
    violations: int = 0
    #: Optional stricter policy: the vtable must belong to a subclass of
    #: the static type (full CFI), not merely *some* class.
    require_compatible_class: bool = True

    def attach(self) -> None:
        original = self.machine.virtual_call

        def guarded_virtual_call(instance: Instance, method: str, *args):
            self.checks += 1
            vptr = self.machine.space.read_pointer(
                instance.address + instance.layout.primary_vptr_offset
            )
            table = self.machine.text.vtable_at(vptr)
            if table is None:
                self.violations += 1
                raise VtableIntegrityViolation(instance.class_def.name, vptr)
            if self.require_compatible_class:
                static = instance.class_def
                # A table is compatible with the static type when it
                # carries (at least) the static type's virtual slots in
                # the same order — exactly the Itanium-ABI property a
                # derived class's vtable has for each of its bases.
                expected = static.virtual_slot_order()
                actual = tuple(name for name, _ in table.slots)
                compatible = len(actual) >= len(expected) and all(
                    actual[i] == name for i, name in enumerate(expected)
                )
                if not compatible:
                    self.violations += 1
                    raise VtableIntegrityViolation(static.name, vptr)
            return original(instance, method, *args)

        self.machine.virtual_call = guarded_virtual_call  # type: ignore[method-assign]


def protect_machine(machine: Machine) -> VtableIntegrityGuard:
    """Attach vtable-integrity checking to ``machine``."""
    guard = VtableIntegrityGuard(machine)
    guard.attach()
    return guard

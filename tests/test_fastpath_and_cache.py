"""Fast-path semantics: bisect segment lookup and the analysis caches.

The PR 3 hot paths must be invisible — identical faults, identical hook
traffic, identical findings — so these tests pin the edges: lookups
exactly at segment ``base`` and ``end - 1``, gap addresses between
segments, permission and straddle faults through the inlined path, and
warm-vs-cold equality for the memoized analysis pipeline.
"""

import pytest

from repro.analysis import (
    analysis_cache_stats,
    analyze_source,
    cached_report,
    clear_analysis_caches,
    parse_cached,
    run_tool_suite,
    simulated_tool_suite,
)
from repro.analysis.reports import AnalysisReport, Finding, Severity
from repro.errors import ApiMisuseError, SegmentationFault
from repro.memory import AddressSpace, Permissions, SegmentKind


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture(autouse=True)
def _fresh_analysis_caches():
    clear_analysis_caches()
    yield
    clear_analysis_caches()


PLACEMENT_SOURCE = """
class Student { public: double gpa; int id; char name[8]; };
class Staff { public: double salary; int id; char name[40]; };
int main() {
    char arena[16];
    Staff *st = new (arena) Staff();
    return 0;
}
"""

LEGACY_SOURCE = """
int main() {
    char buf[16];
    char fmt[8];
    strcpy(buf, "hello");
    printf(fmt);
    return 0;
}
"""


class TestBisectLookupEdges:
    def test_segments_are_address_ordered(self, space):
        bases = [seg.base for seg in space.segments]
        assert bases == sorted(bases)
        assert len(bases) == len(set(bases))

    def test_find_segment_at_base_and_last_byte(self, space):
        for seg in space.segments:
            assert space.find_segment(seg.base) is seg
            assert space.find_segment(seg.end - 1) is seg

    def test_find_segment_misses(self, space):
        first = space.segments[0]
        assert space.find_segment(first.base - 1) is None
        assert space.find_segment(0) is None
        for seg, after in zip(space.segments, space.segments[1:]):
            if seg.end < after.base:  # a gap exists between them
                assert space.find_segment(seg.end) is None

    def test_read_write_at_base_and_end_minus_one(self, space):
        for kind in (SegmentKind.DATA, SegmentKind.HEAP, SegmentKind.STACK):
            seg = space.segment(kind)
            space.write(seg.base, b"\x5a")
            assert space.read(seg.base, 1) == b"\x5a"
            space.write(seg.end - 1, b"\xa5")
            assert space.read(seg.end - 1, 1) == b"\xa5"

    def test_access_one_past_end_is_unmapped_or_outside(self, space):
        heap = space.segment(SegmentKind.HEAP)
        with pytest.raises(SegmentationFault):
            space.read(heap.end, 1)
        with pytest.raises(SegmentationFault):
            space.write(heap.end, b"x")

    def test_straddle_keeps_precise_fault_message(self, space):
        heap = space.segment(SegmentKind.HEAP)
        with pytest.raises(SegmentationFault, match="outside heap segment"):
            space.read(heap.end - 2, 4)
        with pytest.raises(SegmentationFault, match="outside heap segment"):
            space.write(heap.end - 2, b"\x00" * 4)

    def test_permission_faults_survive_fast_path(self, space):
        text = space.segment(SegmentKind.TEXT)
        with pytest.raises(SegmentationFault, match="not writable"):
            space.write(text.base, b"\x90")
        # Reads of text stay fine (r-x).
        assert space.read(text.base, 4) == b"\x00\x00\x00\x00"

    def test_alternating_segments_defeat_locality_cache_safely(self, space):
        """Ping-pong across segments: the last-hit cache must never
        serve a stale segment."""
        heap = space.segment(SegmentKind.HEAP)
        stack = space.segment(SegmentKind.STACK)
        for round_no in range(8):
            space.write(heap.base + round_no, bytes([round_no]))
            space.write(stack.base + round_no, bytes([0xF0 | round_no]))
        for round_no in range(8):
            assert space.read(heap.base + round_no, 1) == bytes([round_no])
            assert space.read(stack.base + round_no, 1) == bytes([0xF0 | round_no])

    def test_unmapped_between_segments_faults_both_ways(self, space):
        data = space.segment(SegmentKind.DATA)
        bss = space.segment(SegmentKind.BSS)
        if data.end < bss.base:
            gap = data.end
            with pytest.raises(SegmentationFault, match="unmapped"):
                space.read(gap, 1)
            with pytest.raises(SegmentationFault, match="unmapped"):
                space.write(gap, b"x")

    def test_zero_length_access_at_one_past_end_faults(self, space):
        """A 0-byte access at an unmapped address is still a fault —
        `read(end, 0)` must not sneak through the fast path."""
        heap = space.segment(SegmentKind.HEAP)
        with pytest.raises(SegmentationFault, match="unmapped"):
            space.read(heap.end, 0)
        with pytest.raises(SegmentationFault, match="unmapped"):
            space.write(heap.end, b"")
        stack = space.segment(SegmentKind.STACK)
        with pytest.raises(SegmentationFault, match="unmapped"):
            space.read(stack.end, 0)

    def test_zero_length_access_inside_segment_is_fine(self, space):
        heap = space.segment(SegmentKind.HEAP)
        assert space.read(heap.base, 0) == b""
        space.write(heap.end - 1, b"")  # no fault


class TestHookTrafficOnFastPath:
    def test_bytearray_write_notifies_bytes_once(self, space):
        events = []
        space.add_access_hook(lambda a, d, w: events.append((a, d, w)))
        base = space.segment(SegmentKind.HEAP).base
        payload = bytearray(b"abc")
        space.write(base, payload)
        assert events == [(base, b"abc", True)]
        assert isinstance(events[0][1], bytes)

    def test_fill_notifies_expanded_pattern(self, space):
        events = []
        space.add_access_hook(lambda a, d, w: events.append((a, d, w)))
        base = space.segment(SegmentKind.BSS).base
        space.fill(base, 32, 0xCC)
        assert events == [(base, b"\xcc" * 32, True)]

    def test_fill_negative_length_is_noop(self, space):
        base = space.segment(SegmentKind.BSS).base
        space.write(base, b"keep")
        space.fill(base, -8)
        assert space.read(base, 4) == b"keep"

    def test_fill_rejects_out_of_range_byte(self, space):
        base = space.segment(SegmentKind.BSS).base
        with pytest.raises(ApiMisuseError):
            space.fill(base, 4, 256)

    def test_read_c_string_hook_covers_string_and_nul(self, space):
        events = []
        base = space.segment(SegmentKind.HEAP).base
        space.write_c_string(base, "alice")
        space.add_access_hook(lambda a, d, w: events.append((a, d, w)))
        assert space.read_c_string(base) == "alice"
        assert events == [(base, b"alice\x00", False)]

    def test_memmove_unhooked_matches_hooked(self):
        plain, hooked = AddressSpace(), AddressSpace()
        hooked.add_access_hook(lambda a, d, w: None)
        for space in (plain, hooked):
            base = space.segment(SegmentKind.HEAP).base
            space.write(base, bytes(range(16)))
            space.memmove(base + 4, base, 12)  # forward overlap
            space.memmove(base, base + 2, 12)  # backward overlap
        base_p = plain.segment(SegmentKind.HEAP).base
        base_h = hooked.segment(SegmentKind.HEAP).base
        assert plain.read(base_p, 16) == hooked.read(base_h, 16)


class TestReadCStringEdges:
    def test_unterminated_to_segment_end_faults_at_end(self, space):
        heap = space.segment(SegmentKind.HEAP)
        start = heap.end - 8
        space.write(start, b"\x41" * 8)  # no NUL before the segment ends
        with pytest.raises(SegmentationFault) as info:
            space.read_c_string(start)
        assert info.value.address == heap.end

    def test_max_length_caps_scan_without_fault(self, space):
        base = space.segment(SegmentKind.HEAP).base
        space.write(base, b"\x42" * 64)
        assert space.read_c_string(base, max_length=8) == "B" * 8

    def test_string_ending_at_last_byte(self, space):
        heap = space.segment(SegmentKind.HEAP)
        start = heap.end - 4
        space.write(start, b"abc\x00")
        assert space.read_c_string(start) == "abc"

    def test_string_straddling_adjacent_segments(self, space):
        """data and bss are contiguous in DEFAULT_LAYOUT: a string
        overflowing data must read through into bss, exactly as the old
        per-byte loop did (this is the paper's data→bss overflow
        scenario)."""
        data = space.segment(SegmentKind.DATA)
        bss = space.segment(SegmentKind.BSS)
        assert data.end == bss.base  # layout precondition
        space.write(data.end - 3, b"ABC")
        space.write(bss.base, b"DE\x00")
        assert space.read_c_string(data.end - 3) == "ABCDE"

    def test_straddling_string_notifies_whole_range_once(self, space):
        data = space.segment(SegmentKind.DATA)
        bss = space.segment(SegmentKind.BSS)
        space.write(data.end - 3, b"ABC")
        space.write(bss.base, b"DE\x00")
        events = []
        space.add_access_hook(lambda a, d, w: events.append((a, d, w)))
        space.read_c_string(data.end - 3)
        assert events == [(data.end - 3, b"ABCDE\x00", False)]

    def test_straddling_string_respects_max_length(self, space):
        data = space.segment(SegmentKind.DATA)
        bss = space.segment(SegmentKind.BSS)
        space.write(data.end - 2, b"AB")
        space.write(bss.base, b"CDEF\x00")
        assert space.read_c_string(data.end - 2, max_length=4) == "ABCD"

    def test_string_into_unreadable_next_segment_faults_at_boundary(self):
        space = AddressSpace()
        # Make bss unreadable so the data→bss crossing must fault.
        bss = space.segment(SegmentKind.BSS)
        bss.permissions = Permissions(read=False, write=True, execute=False)
        bss._readable = False
        space._rebuild_index()
        data = space.segment(SegmentKind.DATA)
        space.write(data.end - 4, b"\x41" * 4)
        with pytest.raises(SegmentationFault, match="not readable") as info:
            space.read_c_string(data.end - 4)
        assert info.value.address == data.end


class TestAnalysisCaches:
    def test_warm_equals_cold(self):
        cold = analyze_source(PLACEMENT_SOURCE)
        warm = analyze_source(PLACEMENT_SOURCE)
        assert warm.render() == cold.render()
        assert warm.rules_fired() == cold.rules_fired()
        assert "PN-OVERSIZE" in warm.rules_fired()

    def test_warm_hit_is_recorded(self):
        analyze_source(PLACEMENT_SOURCE)
        before = analysis_cache_stats()["reports"]["hits"]
        analyze_source(PLACEMENT_SOURCE)
        assert analysis_cache_stats()["reports"]["hits"] == before + 1

    def test_cached_reports_are_not_aliased(self):
        first = analyze_source(PLACEMENT_SOURCE)
        first.add(
            Finding(
                rule="X-INJECTED",
                severity=Severity.INFO,
                message="caller-side mutation",
                line=1,
            )
        )
        second = analyze_source(PLACEMENT_SOURCE)
        assert "X-INJECTED" not in second.rules_fired()

    def test_parse_cached_shares_the_ast(self):
        assert parse_cached(PLACEMENT_SOURCE) is parse_cached(PLACEMENT_SOURCE)

    def test_clear_drops_entries(self):
        parse_cached(PLACEMENT_SOURCE)
        analyze_source(PLACEMENT_SOURCE)
        clear_analysis_caches()
        stats = analysis_cache_stats()
        assert stats["ast"]["entries"] == 0
        assert stats["reports"]["entries"] == 0

    def test_version_keying_recomputes(self):
        calls = []

        def build(program):
            calls.append(1)
            return AnalysisReport(tool="t")

        cached_report("tool-x", "1", PLACEMENT_SOURCE, build)
        cached_report("tool-x", "1", PLACEMENT_SOURCE, build)
        assert len(calls) == 1  # same version: warm
        cached_report("tool-x", "2", PLACEMENT_SOURCE, build)
        assert len(calls) == 2  # bumped version: recomputed

    def test_parse_errors_are_not_cached(self):
        bad = "int main() { return 0"  # unbalanced
        with pytest.raises(Exception):
            parse_cached(bad)
        with pytest.raises(Exception):
            parse_cached(bad)
        assert analysis_cache_stats()["ast"]["entries"] == 0

    def test_run_tool_suite_matches_per_scanner_scan(self):
        projected = dict(run_tool_suite(LEGACY_SOURCE))
        for scanner in simulated_tool_suite():
            individual = scanner.scan_source(LEGACY_SOURCE)
            assert projected[scanner.name].render() == individual.render()
            assert all(
                finding.tool == scanner.name
                for finding in projected[scanner.name].findings
            )

    def test_same_name_same_rule_id_different_matcher_not_shared(self):
        """Two scanners may not share cache entries just because their
        names and rule ids collide — the matcher is part of the key."""
        from repro.analysis.legacy_tools import CLASSIC_RULES, LegacyRule, LegacyRuleScanner

        classic = LegacyRuleScanner(name="clone", rules=(CLASSIC_RULES[0],))
        reuses_id = LegacyRuleScanner(
            name="clone",
            rules=(
                LegacyRule(
                    rule_id=CLASSIC_RULES[0].rule_id,
                    severity=Severity.WARNING,
                    message="flag every printf",
                    matcher=lambda expr: getattr(expr, "func", None) == "printf",
                ),
            ),
        )
        first = classic.scan_source(LEGACY_SOURCE)
        second = reuses_id.scan_source(LEGACY_SOURCE)
        assert {f.line for f in first.findings} == {5}  # the strcpy call
        assert {f.line for f in second.findings} == {6}  # the printf call

    def test_identical_rule_tuples_still_share_cache(self):
        """The content-keyed fingerprint must not defeat caching for
        scanners built fresh with equal rules (simulated_tool_suite
        builds new tuples per call)."""
        from repro.analysis.legacy_tools import CLASSIC_RULES, LegacyRuleScanner

        LegacyRuleScanner(name="twin", rules=tuple(CLASSIC_RULES)).scan_source(
            LEGACY_SOURCE
        )
        before = analysis_cache_stats()["reports"]["hits"]
        LegacyRuleScanner(name="twin", rules=tuple(CLASSIC_RULES)).scan_source(
            LEGACY_SOURCE
        )
        assert analysis_cache_stats()["reports"]["hits"] == before + 1

    def test_report_dedup_with_preloaded_findings(self):
        finding = Finding(
            rule="R", severity=Severity.ERROR, message="m", line=3, function="f"
        )
        report = AnalysisReport(tool="t", findings=[finding])
        report.add(finding)  # duplicate of a constructor-supplied finding
        assert len(report.findings) == 1
        report.add(
            Finding(rule="R", severity=Severity.ERROR, message="m", line=4, function="f")
        )
        assert len(report.findings) == 2

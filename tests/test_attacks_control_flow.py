"""Integration tests: control-flow hijack attacks and StackGuard evasion."""


from repro.attacks import (
    NX_STACK,
    STACKGUARD,
    UNPROTECTED,
    ArcInjectionAttack,
    CanarySkipExperiment,
    CodeInjectionAttack,
    Environment,
    FunctionPointerAttack,
    ReturnAddressAttack,
    VariablePointerAttack,
    VtableSubterfugeDataAttack,
    VtableSubterfugeStackAttack,
    naive_smash,
    selective_overwrite,
)
from repro.runtime import CanaryPolicy, MachineConfig


class TestReturnAddressAttack:
    """Listing 13 and the Section 5.2 experiment."""

    def test_hijack_without_protections(self):
        result = ReturnAddressAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["reached"] == "system"

    def test_no_fp_machine_ssn0_is_enough(self):
        env = Environment(
            label="no-fp",
            machine_config=MachineConfig(
                canary_policy=CanaryPolicy.NONE, save_frame_pointer=False
            ),
        )
        result = ReturnAddressAttack().run(env)
        assert result.succeeded

    def test_naive_smash_detected_by_stackguard(self):
        result = naive_smash().run(STACKGUARD)
        assert not result.succeeded
        assert result.detected_by == "stackguard"

    def test_naive_smash_wins_without_stackguard(self):
        result = naive_smash().run(UNPROTECTED)
        assert result.succeeded

    def test_selective_overwrite_evades_stackguard(self):
        result = selective_overwrite(STACKGUARD).run(STACKGUARD)
        assert result.succeeded
        assert result.detail["canary_intact"] is True

    def test_canary_skip_experiment_summary(self):
        result = CanarySkipExperiment().run(STACKGUARD)
        assert result.succeeded
        assert result.detail["naive_detected"] == "stackguard"
        assert result.detail["selective_canary_intact"] is True

    def test_terminator_canary_same_story(self):
        env = Environment(
            label="terminator",
            machine_config=MachineConfig(
                canary_policy=CanaryPolicy.TERMINATOR, save_frame_pointer=True
            ),
        )
        assert naive_smash().run(env).detected_by == "stackguard"
        assert selective_overwrite(env).run(env).succeeded


class TestInjection:
    """Section 3.6.2."""

    def test_arc_injection_spawns_shell(self):
        result = ArcInjectionAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["shell"]

    def test_arc_injection_survives_nx(self):
        # return-to-libc needs no executable stack.
        result = ArcInjectionAttack().run(NX_STACK)
        assert result.succeeded

    def test_code_injection_spawns_shell(self):
        result = CodeInjectionAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["steps"] > 0

    def test_code_injection_blocked_by_nx(self):
        result = CodeInjectionAttack().run(NX_STACK)
        assert not result.succeeded
        assert result.detected_by == "nx"


class TestVtableSubterfuge:
    """Section 3.8.2."""

    def test_bss_variant_dispatches_to_attacker_function(self):
        result = VtableSubterfugeDataAttack().run(UNPROTECTED)
        assert result.succeeded
        assert "system" in result.detail["outcome"]

    def test_vptr_value_changed(self):
        result = VtableSubterfugeDataAttack().run(UNPROTECTED)
        assert result.detail["vptr_before"] != result.detail["vptr_after"]

    def test_garbage_vptr_crashes(self):
        result = VtableSubterfugeDataAttack(fake_vtable=False).run(UNPROTECTED)
        assert result.succeeded
        assert "crash" in result.detail["outcome"]

    def test_stack_variant_reaches_privileged_function(self):
        result = VtableSubterfugeStackAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["privileged"]


class TestPointerSubterfuge:
    """Sections 3.9–3.10."""

    def test_null_guarded_pointer_invoked(self):
        result = FunctionPointerAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["guard_blocked_before"]
        assert result.detail["invoked"] == "grantAdminAccess"

    def test_variable_pointer_redirected_to_secret(self):
        result = VariablePointerAttack(redirect_to_secret=True).run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["dereference"] == "TOPSECRETTOKEN"

    def test_variable_pointer_to_garbage_crashes_use(self):
        result = VariablePointerAttack(redirect_to_secret=False).run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["dereference"] == "SIGSEGV"

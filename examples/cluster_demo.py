"""A tour of the repro.cluster sharded front-end.

Runs entirely in-process: starts a 3-shard cluster behind the asyncio
HTTP front-end, sweeps the paper corpus over the consistent-hash ring
(cold, then warm from the cache tiers), throttles a greedy tenant
through the token-bucket quotas, kills a shard mid-sweep and shows the
report bytes unchanged, then drains one gracefully.

    PYTHONPATH=src python examples/cluster_demo.py
"""

import asyncio
import json
import time

from repro.cluster import (
    AsyncClusterClient,
    ClusterRouter,
    InProcessShard,
    QuotaManager,
    create_cluster_server,
)
from repro.workloads import corpus_sources


async def main() -> None:
    shards = [InProcessShard(f"s{i}", workers=2) for i in range(3)]
    router = ClusterRouter(shards, vnodes=64)
    quotas = QuotaManager(capacity=64, refill_rate=32.0,
                          overrides={"greedy": (2, 1.0)})
    server = await create_cluster_server(router, quotas=quotas)
    client = AsyncClusterClient("127.0.0.1", server.port, tenant="demo")
    try:
        health = await client.healthz()
        print(f"cluster up: {health['shards_live']} shards "
              f"{health['shards']} on port {server.port}")

        # -- sweep over the ring, cold vs warm ----------------------------
        pairs = list(corpus_sources(generated=12))
        started = time.perf_counter()
        cold = await client.sweep(pairs)
        cold_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        warm = await client.sweep(pairs)
        warm_ms = (time.perf_counter() - started) * 1000

        flagged = sum(1 for r in cold["reports"] if r["flagged"])
        tiers = (await client.metrics())["tiers"]
        print(f"sweep: {len(pairs)} programs, {flagged} flagged")
        print(f"  cold {cold_ms:.1f}ms → warm {warm_ms:.1f}ms "
              f"(tier hits: {tiers['hits']})")
        assert json.dumps(cold) == json.dumps(warm)

        # -- tenant quotas -------------------------------------------------
        greedy = AsyncClusterClient("127.0.0.1", server.port, tenant="greedy")
        for label, source in pairs[:3]:
            await greedy.analyze(source, label=label)
        waits = [round(w, 2) for w in greedy.throttled_waits]
        print(f"greedy tenant throttled: waited {waits}s across 429 retries")

        # -- kill a shard mid-sweep: bytes must not change -----------------
        async def kill_soon():
            await asyncio.sleep(0.005)
            await client.kill("s1")

        survived, _ = await asyncio.gather(client.sweep(pairs), kill_soon())
        print("killed s1 mid-sweep; reports identical:",
              json.dumps(survived) == json.dumps(cold))
        print("topology:", (await client.cluster())["ring"]["shards"])

        # -- graceful drain ------------------------------------------------
        drained = await client.drain("s2")
        print(f"drained s2: completed={drained['drained']['completed']} "
              f"inflight={drained['drained']['inflight']}")
        counters = (await client.metrics())["counters"]
        print("routed", counters["cluster.jobs_routed"], "jobs |",
              "redispatched", counters.get("cluster.redispatches", 0), "|",
              "shards lost", counters.get("cluster.shards_lost", 0))
    finally:
        await server.close()


if __name__ == "__main__":
    asyncio.run(main())

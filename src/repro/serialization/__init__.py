"""Serialized/remote objects — the untrusted inputs of Section 3.2."""

from .json_codec import (
    RemoteObject,
    construct_from_remote,
    serialize,
    wire_size_estimate,
)
from .remote import RemoteService, honest_service, malicious_service

__all__ = [
    "RemoteObject",
    "RemoteService",
    "construct_from_remote",
    "honest_service",
    "malicious_service",
    "serialize",
    "wire_size_estimate",
]

"""Workload definitions: the paper's example classes and generators
used by the benchmark harnesses."""

from .classes import (
    make_mobile_player,
    make_someclass,
    make_student_classes,
    set_ssn,
)
from .corpus import FULL_CORPUS, CorpusProgram, corpus_sources
from .generators import (
    ALL_SHAPES,
    CLASSIC_SHAPES,
    DetectorScore,
    GeneratedProgram,
    generate_corpus,
    generate_package_corpus,
    generate_program,
    score_detector,
)

__all__ = [
    "ALL_SHAPES",
    "CLASSIC_SHAPES",
    "CorpusProgram",
    "DetectorScore",
    "FULL_CORPUS",
    "GeneratedProgram",
    "corpus_sources",
    "generate_corpus",
    "generate_package_corpus",
    "generate_program",
    "make_mobile_player",
    "make_someclass",
    "make_student_classes",
    "score_detector",
    "set_ssn",
]

"""The declarative threat registry: findings → CWE/CAPEC risk entries.

Every signal the repository can emit about a program — a detector rule
id, a legacy-scanner rule id, a fuzz auto-triage class, an attack name
from the E14 matrix — maps onto exactly one :class:`Threat` entry
carrying its CWE ids, CAPEC reference, base :class:`Likelihood` and
:class:`Impact`, and mitigations.  Threats follow the declarative
``Threat.apply(target) -> Optional[Risk]`` idiom of threat-modeling
libraries: a threat inspects one :class:`ScoreTarget` (the evidence
unit) and either claims it as a :class:`Risk` or declines.

The registry is *total* by construction and enforced by test: any new
detector rule, legacy rule, or triage class without a mapping makes
:func:`coverage_gaps` non-empty, so unscored rules cannot silently
ship (see ``tests/test_score_threats.py``).
"""

from __future__ import annotations

import enum
import hashlib
import inspect
import re
from dataclasses import dataclass
from typing import Iterable, Optional


class Likelihood(enum.IntEnum):
    """How likely exploitation is, given the evidence grade."""

    UNLIKELY = 1
    LIKELY = 2
    VERY_LIKELY = 3

    def label(self) -> str:
        return self.name.lower().replace("_", "-")


class Impact(enum.IntEnum):
    """Damage when the threat lands."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3
    VERY_HIGH = 4

    def label(self) -> str:
        return self.name.lower().replace("_", "-")


#: The evidence kinds a target may carry.
TARGET_KINDS = ("finding", "triage", "matrix-cell")


@dataclass(frozen=True)
class ScoreTarget:
    """One unit of evidence a threat may claim.

    ``trigger`` is the registry key: a detector/legacy rule id for
    ``finding`` targets, an auto-triage class for ``triage`` targets,
    or an attack name for ``matrix-cell`` targets.
    """

    kind: str  # one of TARGET_KINDS
    trigger: str
    package: str = ""  # module/package/report label the evidence is about
    detail: str = ""
    line: int = 0
    severity: str = ""  # finding severity label ("error"/"warning"/"info")
    outcome: str = ""  # matrix-cell summary ("ATTACK-WINS", ...)


@dataclass(frozen=True)
class Risk:
    """A threat applied to a concrete target, with the effective grade."""

    target: ScoreTarget
    threat: "Threat"
    likelihood: Likelihood
    impact: Impact

    @property
    def score(self) -> int:
        """Likelihood × impact on the 1–12 scale."""
        return int(self.likelihood) * int(self.impact)

    def to_dict(self) -> dict:
        """Deterministic JSON-able form used by reports and workers."""
        return {
            "capec": self.threat.capec,
            "cwe": list(self.threat.cwe_ids),
            "detail": self.target.detail,
            "impact": self.impact.label(),
            "kind": self.target.kind,
            "likelihood": self.likelihood.label(),
            "line": self.target.line,
            "score": self.score,
            "threat": self.threat.threat_id,
            "threat_name": self.threat.name,
            "trigger": self.target.trigger,
        }


class Threat:
    """One CWE/CAPEC entry claiming a set of trigger ids.

    The base likelihood/impact describe an error-grade finding; warning
    and info findings are attenuated deterministically in :meth:`apply`
    so a review-grade signal never outscores a proved overflow.
    """

    def __init__(
        self,
        threat_id: str,
        name: str,
        *,
        capec: str,
        cwe_ids: tuple,
        likelihood: Likelihood,
        impact: Impact,
        applies_to: Iterable[str],
        description: str = "",
        mitigations: tuple = (),
    ) -> None:
        self.threat_id = threat_id
        self.name = name
        self.capec = capec
        self.cwe_ids = tuple(sorted(cwe_ids))
        self.likelihood = likelihood
        self.impact = impact
        self.applies_to = frozenset(applies_to)
        self.description = description
        self.mitigations = tuple(mitigations)

    def apply(self, target: ScoreTarget) -> Optional[Risk]:
        """Claim ``target`` as a risk, or decline.

        Matrix cells yield a risk only when the attack actually won
        (``ATTACK-WINS``); a prevented/detected cell is the defense
        working, not a risk.
        """
        if target.kind not in TARGET_KINDS:
            return None
        if target.trigger not in self.applies_to:
            return None
        if target.kind == "matrix-cell" and target.outcome != "ATTACK-WINS":
            return None
        likelihood, impact = self.likelihood, self.impact
        if target.severity == "warning":
            likelihood = Likelihood(max(1, int(likelihood) - 1))
        elif target.severity == "info":
            likelihood, impact = Likelihood.UNLIKELY, Impact.LOW
        return Risk(
            target=target, threat=self, likelihood=likelihood, impact=impact
        )


class Threatlib:
    """An ordered threat registry with trigger-indexed lookup."""

    def __init__(self) -> None:
        self._threats: list = []
        self._by_trigger: dict = {}

    def register(self, threat: Threat) -> Threat:
        for trigger in threat.applies_to:
            existing = self._by_trigger.get(trigger)
            if existing is not None:
                raise ValueError(
                    f"trigger '{trigger}' already claimed by {existing.threat_id}"
                )
            self._by_trigger[trigger] = threat
        self._threats.append(threat)
        return threat

    def threats(self) -> tuple:
        return tuple(self._threats)

    def threat_for(self, trigger: str) -> Optional[Threat]:
        return self._by_trigger.get(trigger)

    def triggers(self) -> frozenset:
        return frozenset(self._by_trigger)

    def apply(self, target: ScoreTarget) -> Optional[Risk]:
        """First (only, by construction) matching threat's risk."""
        threat = self._by_trigger.get(target.trigger)
        return threat.apply(target) if threat is not None else None

    def __len__(self) -> int:
        return len(self._threats)


DEFAULT_THREATLIB = Threatlib()


class CAPEC_100(Threat):
    """Overflow Buffers — the paper's headline class."""

    def __init__(self) -> None:
        super().__init__(
            "CAPEC-100",
            "Overflow Buffers",
            capec="https://capec.mitre.org/data/definitions/100.html",
            cwe_ids=(119, 120, 131, 787),
            likelihood=Likelihood.VERY_LIKELY,
            impact=Impact.VERY_HIGH,
            description=(
                "A write past an allocation's extent corrupts adjacent "
                "state — the placement-new data/bss/heap/stack overflows "
                "of §3, including attacker-sized placement arrays and "
                "tainted copy loops."
            ),
            mitigations=(
                "Bounds-check every placement site (sizeof guard, §5.1).",
                "Use bounded copy APIs with provably correct lengths.",
                "Deploy shadow-memory red zones around reusable arenas.",
            ),
            applies_to=(
                # detector rules
                "PN-OVERSIZE",
                "PN-TAINTED-COUNT",
                "PN-TAINTED-FIELD",
                "PN-TAINTED-COPY-LOOP",
                # legacy rules
                "CLASSIC-UNSAFE-API",
                "CLASSIC-BOUNDED-COPY-REVIEW",
                # fuzz triage classes
                "taint-quantifier",
                # matrix attacks
                "overflow-via-construction",
                "overflow-via-remote-object",
                "overflow-via-copy-constructor",
                "overflow-via-indirect-construction",
                "internal-overflow",
                "data-bss-overflow",
                "heap-overflow",
                "two-step-stack-array",
                "two-step-bss-array",
                "data-variable-overwrite",
                "stack-local-overwrite",
                "member-variable-overwrite",
                "stack-return-address",
                "arc-injection",
            ),
        )


class CAPEC_129(Threat):
    """Pointer Manipulation — vptr/function-pointer subterfuge."""

    def __init__(self) -> None:
        super().__init__(
            "CAPEC-129",
            "Pointer Manipulation",
            capec="https://capec.mitre.org/data/definitions/129.html",
            cwe_ids=(822, 824, 843),
            likelihood=Likelihood.LIKELY,
            impact=Impact.VERY_HIGH,
            description=(
                "A corrupted or mis-typed pointer redirects reads, "
                "writes, or virtual dispatch: vtable subterfuge "
                "(§3.8.2), function/variable pointer overwrites, and "
                "type-confused placement bindings."
            ),
            mitigations=(
                "Validate vptrs against emitted vtables (forward-edge CFI).",
                "Never bind an allocation to a pointer of a larger type.",
                "Poison freed/unused pointers so wild dereferences fault.",
            ),
            applies_to=(
                "PN-TYPE-CONFUSION",
                "PN-VPTR-RISK",
                "unexercised-confusion",
                "wild-pointer",
                "vtable-subterfuge-bss",
                "vtable-subterfuge-stack",
                "function-pointer-subterfuge",
                "variable-pointer-subterfuge",
            ),
        )


class CAPEC_242(Threat):
    """Code Injection — shellcode through the overflowed arena."""

    def __init__(self) -> None:
        super().__init__(
            "CAPEC-242",
            "Code Injection",
            capec="https://capec.mitre.org/data/definitions/242.html",
            cwe_ids=(94, 95),
            likelihood=Likelihood.LIKELY,
            impact=Impact.VERY_HIGH,
            description=(
                "Attacker-supplied bytes land in an executable region "
                "and control flow is steered into them (§3.6 code "
                "injection through the placement overflow)."
            ),
            mitigations=(
                "Non-executable data/stack segments (NX).",
                "Randomize the address space so injected targets move.",
            ),
            applies_to=("code-injection",),
        )


class CAPEC_116(Threat):
    """Excavation — information leaks from re-used arenas."""

    def __init__(self) -> None:
        super().__init__(
            "CAPEC-116",
            "Excavation",
            capec="https://capec.mitre.org/data/definitions/116.html",
            cwe_ids=(200, 226, 244),
            likelihood=Likelihood.LIKELY,
            impact=Impact.HIGH,
            description=(
                "Sensitive residue in a re-used, never-sanitized arena "
                "flows to an output sink (§4.3, Listings 21–22)."
            ),
            mitigations=(
                "memset the full arena before every reuse (§5.1).",
                "Clear sensitive heap objects before shrinking placements.",
            ),
            applies_to=(
                "PN-NO-SANITIZE",
                "latent-exposure",
                "info-leak-array",
                "info-leak-object",
            ),
        )


class CAPEC_130(Threat):
    """Excessive Allocation — leaks and attacker-sized allocations."""

    def __init__(self) -> None:
        super().__init__(
            "CAPEC-130",
            "Excessive Allocation",
            capec="https://capec.mitre.org/data/definitions/130.html",
            cwe_ids=(400, 401, 770, 789),
            likelihood=Likelihood.LIKELY,
            impact=Impact.MEDIUM,
            description=(
                "Resources leak or balloon until the process starves: "
                "the §4.5 shrinking-placement memory leak, unbounded "
                "alloca, and allocation-exhaustion faults."
            ),
            mitigations=(
                "delete the original arena before re-placing a smaller object.",
                "Cap attacker-influenceable allocation sizes.",
            ),
            applies_to=(
                "PN-LEAK",
                "CLASSIC-ALLOCA",
                "resource-exhaustion",
                "memory-leak",
                "memory-leak-tracked",
                "dos-resource-exhaustion",
            ),
        )


class CAPEC_227(Threat):
    """Sustained Client Engagement — loop-bound denial of service."""

    def __init__(self) -> None:
        super().__init__(
            "CAPEC-227",
            "Sustained Client Engagement",
            capec="https://capec.mitre.org/data/definitions/227.html",
            cwe_ids=(400, 835),
            likelihood=Likelihood.LIKELY,
            impact=Impact.MEDIUM,
            description=(
                "An attacker-written loop bound spins the process past "
                "any useful budget (§4.4 DoS through the overflowed "
                "field)."
            ),
            mitigations=(
                "Bound every loop whose limit can be attacker-reached.",
                "Run request handling under a step/time budget.",
            ),
            applies_to=(
                "unbounded-loop",
                "dos-loop-inflation",
                "dos-auth-bypass",
            ),
        )


class CAPEC_67(Threat):
    """String Format Overflow — the classic format-string class."""

    def __init__(self) -> None:
        super().__init__(
            "CAPEC-67",
            "String Format Overflow in syslog()",
            capec="https://capec.mitre.org/data/definitions/67.html",
            cwe_ids=(134,),
            likelihood=Likelihood.VERY_LIKELY,
            impact=Impact.HIGH,
            description=(
                "A format string taken from a variable lets the "
                "attacker read or write through conversion directives."
            ),
            mitigations=("Pass a constant format string; log data as arguments.",),
            applies_to=("CLASSIC-FORMAT-STRING",),
        )


class CWE_119_AUDIT(Threat):
    """Audit-grade memory signals: unknown arenas and misalignment."""

    def __init__(self) -> None:
        super().__init__(
            "CWE-119-AUDIT",
            "Memory Operation Audit Signal",
            capec="",
            cwe_ids=(119, 758),
            likelihood=Likelihood.UNLIKELY,
            impact=Impact.LOW,
            description=(
                "Informational findings worth an audit pass: a placement "
                "address whose arena extent cannot be determined (the "
                "paper's 'just an address' caveat) or an alignment "
                "mismatch between arena and placed type."
            ),
            mitigations=(
                "Carry arena extents alongside bare pointers.",
                "Align reusable pools for the largest placed type.",
            ),
            applies_to=("PN-UNKNOWN-ARENA", "PN-MISALIGNED"),
        )


for _threat_class in (
    CAPEC_100,
    CAPEC_129,
    CAPEC_242,
    CAPEC_116,
    CAPEC_130,
    CAPEC_227,
    CAPEC_67,
    CWE_119_AUDIT,
):
    DEFAULT_THREATLIB.register(_threat_class())


# -- defense and outcome coverage -------------------------------------------

#: Defense name → CWE ids the defense mitigates.  Must stay total over
#: ``repro.defenses.ALL_DEFENSES``: a new defense without an entry here
#: shows up in :func:`coverage_gaps` and fails the completeness test.
DEFENSE_MITIGATIONS = {
    "none": (),
    "stackguard": (121,),
    "checked-placement": (119, 787),
    "shadow-memory": (119, 787),
    "nx-stack": (94, 95),
    "sanitize-on-reuse": (200, 226, 244),
    "shadow-ret-stack": (121, 788),
    "vtable-integrity": (822, 843),
    "vrt": (119, 125, 787, 788),
    "memory-tagging": (119, 125, 787, 788),
}

#: ``classify_failure`` detection label → the defense name credited.
#: Must stay total over ``repro.attacks.base.ALL_DETECTION_LABELS`` so a
#: new defense exception cannot produce a ``detected(...)`` outcome the
#: scorer cannot attribute.
DETECTION_DEFENSES = {
    "stackguard": "stackguard",
    "bounds-check": "checked-placement",
    "shadow-memory": "shadow-memory",
    "nx": "nx-stack",
    "shadow-return-stack": "shadow-ret-stack",
    "vtable-integrity": "vtable-integrity",
    "vrt": "vrt",
    "memory-tagging": "memory-tagging",
}

#: Matrix-cell outcome head → how scoring treats the cell.
OUTCOME_CLASSES = {
    "ATTACK-WINS": "win",
    "detected": "stopped",
    "crashed": "stopped",
    "prevented": "stopped",
    "invalid": "unjudged",
}


def outcome_class(summary: str) -> Optional[str]:
    """Classify one matrix-cell summary (``detected(x)`` → "stopped");
    ``None`` for vocabulary the scorer does not know."""
    return OUTCOME_CLASSES.get(summary.split("(", 1)[0])


def defense_names() -> frozenset:
    """Every defense name in the evaluation roster."""
    from ..defenses import ALL_DEFENSES

    return frozenset(defense.name for defense in ALL_DEFENSES)


def detection_labels() -> frozenset:
    """Every ``detected_by`` label classification can produce."""
    from ..attacks.base import ALL_DETECTION_LABELS

    return frozenset(ALL_DETECTION_LABELS)


def matrix_outcome_ids() -> frozenset:
    """Every cell summary the matrix can render."""
    return frozenset(
        {"ATTACK-WINS", "crashed", "prevented", "invalid"}
        | {f"detected({label})" for label in detection_labels()}
    )


# -- trigger enumeration (what the registry must cover) ---------------------


def detector_rule_ids() -> frozenset:
    """Every rule id the placement-new detector can emit, extracted
    from the detector's own source so a new ``_emit("PN-…")`` call is
    seen here without anyone maintaining a mirror list."""
    from ..analysis import detector

    return frozenset(
        re.findall(r'"(PN-[A-Z][A-Z0-9-]*)"', inspect.getsource(detector))
    )


def legacy_rule_ids() -> frozenset:
    """Every classic-scanner rule id (the data list is authoritative)."""
    from ..analysis import CLASSIC_RULES

    return frozenset(rule.rule_id for rule in CLASSIC_RULES)


def triage_class_ids() -> frozenset:
    """Every fuzz auto-triage class label."""
    from ..fuzz.divergence import TRIAGE_RULES

    return frozenset(label for label, _, _ in TRIAGE_RULES)


def attack_names() -> frozenset:
    """Every attack-gallery scenario name (the E14 matrix rows)."""
    from ..attacks import all_attacks

    return frozenset(scenario.name for scenario in all_attacks())


def coverage_gaps(threatlib: Optional[Threatlib] = None) -> dict:
    """Trigger ids the registry does not map, by family.

    Empty when the registry is total; the completeness test fails on
    anything else.
    """
    lib = threatlib or DEFAULT_THREATLIB
    known = lib.triggers()
    gaps = {
        "detector_rules": sorted(detector_rule_ids() - known),
        "legacy_rules": sorted(legacy_rule_ids() - known),
        "triage_classes": sorted(triage_class_ids() - known),
        "attacks": sorted(attack_names() - known),
        # Defense-side totality: every defense must declare its CWE
        # mitigations, every detection label must credit a real defense,
        # and every renderable cell outcome must classify — otherwise a
        # new mitigation ships outcomes scoring cannot attribute.
        "defenses": sorted(defense_names() - set(DEFENSE_MITIGATIONS)),
        "detections": sorted(
            (detection_labels() - set(DETECTION_DEFENSES))
            | {
                label
                for label, credited in DETECTION_DEFENSES.items()
                if credited not in defense_names()
            }
        ),
        "matrix_outcomes": sorted(
            outcome
            for outcome in matrix_outcome_ids()
            if outcome_class(outcome) is None
        ),
    }
    return {family: missing for family, missing in gaps.items() if missing}


# -- version fingerprints ----------------------------------------------------


def registry_version(threatlib: Optional[Threatlib] = None) -> str:
    """Digest of everything in the registry that can move a score."""
    lib = threatlib or DEFAULT_THREATLIB
    parts = []
    for threat in sorted(lib.threats(), key=lambda t: t.threat_id):
        parts.append(
            "|".join(
                (
                    threat.threat_id,
                    threat.name,
                    ",".join(str(c) for c in threat.cwe_ids),
                    str(int(threat.likelihood)),
                    str(int(threat.impact)),
                    ",".join(sorted(threat.applies_to)),
                )
            )
        )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:12]


def scoring_versions() -> dict:
    """The attributability fingerprint embedded in scored reports.

    Mirrors :func:`repro.regress.store.current_versions` (detector,
    legacy-rule, event-vocabulary, and triage-rule versions) and adds
    the threat-registry digest, so a scored report records every
    revision that could have produced different numbers.
    """
    from ..regress.store import current_versions

    versions = dict(current_versions())
    versions["threat_registry"] = registry_version()
    return versions


# -- evidence adapters -------------------------------------------------------


def risks_from_report(label: str, report, threatlib: Optional[Threatlib] = None) -> list:
    """Map an :class:`~repro.analysis.AnalysisReport` onto risks.

    Findings are visited in the report's deterministic total order, so
    the returned risk list is byte-stable for a given report.
    """
    lib = threatlib or DEFAULT_THREATLIB
    risks = []
    for finding in sorted(
        report.findings,
        key=lambda f: (f.line, f.rule, f.function, f.message),
    ):
        risk = lib.apply(
            ScoreTarget(
                kind="finding",
                trigger=finding.rule,
                package=label,
                detail=finding.message,
                line=finding.line,
                severity=finding.severity.label(),
            )
        )
        if risk is not None:
            risks.append(risk)
    return risks


def risks_from_divergence(divergence, threatlib: Optional[Threatlib] = None):
    """Map one triaged fuzz divergence onto its risk, if the triage
    class is registry-known (open and manually-triaged divergences
    carry no auto class and map to nothing)."""
    from ..regress.store import triage_label

    lib = threatlib or DEFAULT_THREATLIB
    label = triage_label(divergence.triage)
    if not label or label == "manual":
        return None
    return lib.apply(
        ScoreTarget(
            kind="triage",
            trigger=label,
            package=divergence.family or divergence.fingerprint,
            detail=divergence.kind,
        )
    )


def risks_from_matrix(matrix, threatlib: Optional[Threatlib] = None) -> list:
    """Map an attack × defense matrix onto risks, one per winning cell.

    Accepts either a :class:`repro.defenses.EvaluationMatrix` or the
    dict form produced by ``ServiceEngine.matrix``.
    """
    lib = threatlib or DEFAULT_THREATLIB
    cells = []
    if isinstance(matrix, dict):
        for cell in matrix.get("cells", ()):
            cells.append((cell["attack"], cell["defense"], cell["summary"]))
    else:
        for cell in matrix.cells:
            cells.append((cell.attack, cell.defense, cell.summary))
    risks = []
    for attack, defense, summary in cells:
        risk = lib.apply(
            ScoreTarget(
                kind="matrix-cell",
                trigger=attack,
                package=attack,
                detail=f"defense={defense}",
                outcome=summary,
            )
        )
        if risk is not None:
            risks.append(risk)
    return risks

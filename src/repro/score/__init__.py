"""repro.score: CWE/CAPEC risk scoring with blast-radius propagation.

The capstone layer over every prior subsystem: a declarative threat
registry (:mod:`threats`) maps detector rules, legacy-scanner rules,
fuzz auto-triage classes, and attack × defense matrix outcomes onto
CWE/CAPEC threat entries in the ``Threat.apply(target) -> Risk`` idiom;
:mod:`packages` groups MiniC++ modules into import-declaring packages
over a dependency DAG; and :mod:`propagate` pushes each flawed module's
intrinsic risk through its transitive dependents with depth
attenuation, so a corpus can be ranked by *blast radius* rather than
flat per-file severity.  See docs/SCORING.md.
"""

from .packages import (
    DEMO_PACKAGES,
    Package,
    PackageGraph,
    demo_graph,
    generated_package_graph,
    load_package_dir,
    parse_package_source,
    render_package_source,
)
from .propagate import (
    DEFAULT_ATTENUATION,
    CorpusScore,
    PackageScore,
    analyze_package_source,
    diff_score_reports,
    score_graph,
    score_packages,
)
from .threats import (
    DEFAULT_THREATLIB,
    Impact,
    Likelihood,
    Risk,
    ScoreTarget,
    Threat,
    Threatlib,
    attack_names,
    coverage_gaps,
    detector_rule_ids,
    legacy_rule_ids,
    registry_version,
    risks_from_divergence,
    risks_from_matrix,
    risks_from_report,
    scoring_versions,
    triage_class_ids,
)

__all__ = [
    "CorpusScore",
    "DEFAULT_ATTENUATION",
    "DEFAULT_THREATLIB",
    "DEMO_PACKAGES",
    "Impact",
    "Likelihood",
    "Package",
    "PackageGraph",
    "PackageScore",
    "Risk",
    "ScoreTarget",
    "Threat",
    "Threatlib",
    "analyze_package_source",
    "attack_names",
    "coverage_gaps",
    "demo_graph",
    "detector_rule_ids",
    "diff_score_reports",
    "generated_package_graph",
    "legacy_rule_ids",
    "load_package_dir",
    "parse_package_source",
    "registry_version",
    "render_package_source",
    "risks_from_divergence",
    "risks_from_matrix",
    "risks_from_report",
    "score_graph",
    "score_packages",
    "scoring_versions",
    "triage_class_ids",
]

#!/usr/bin/env python
"""The modern-mitigation sweep, end to end — a runnable tour of repro.matrix.

Runs a compact sweep (a slice of the attack gallery plus every fuzz
seed-family program) under the 2011-era columns *and* the modern
mitigations (shadow call stack, variable record table, memory tagging),
prints the table, proves byte-identity between the sequential and the
service-fanned paths, and shows the drift gate catching a flipped cell.

Run:  PYTHONPATH=src python examples/matrix_demo.py
"""

import json

from repro.matrix import (
    attack_rows,
    canonical_report_json,
    diff_reports,
    render_report,
    run_sweep,
    seed_rows,
)
from repro.service import ServiceEngine

DEFENSES = (
    "none",
    "stackguard",
    "checked-placement",
    "shadow-ret-stack",
    "vrt",
    "memory-tagging",
)


def main() -> None:
    rows = attack_rows()[:10] + seed_rows()
    print(f"sweeping {len(rows)} rows x {len(DEFENSES)} defenses...\n")
    report = run_sweep(rows=rows, defenses=DEFENSES)
    print(render_report(report, column_width=20))
    print()

    print("— §5's legacy-code gap, mechanically —")
    for row in report["rows"]:
        if row["kind"] != "seed":
            continue
        print(
            f" seed:{row['id']:14s} checked-placement={row['cells']['checked-placement']:12s}"
            f" vrt={row['cells']['vrt']}"
        )
    print(
        "\nthe source fix (checked placement) was never compiled into these\n"
        "interpreted programs, so it cannot see their placements; the VRT\n"
        "sits under the allocator and catches them anyway.\n"
    )

    print("— determinism: the fanned sweep is byte-identical —")
    with ServiceEngine(workers=4, use_cache=False) as engine:
        fanned = engine.matrix_sweep(rows=rows, defenses=DEFENSES)
    identical = canonical_report_json(fanned) == canonical_report_json(report)
    print(f" sequential == 4 workers: {identical}\n")

    print("— the drift gate —")
    mutated = json.loads(canonical_report_json(report))
    mutated["rows"][0]["cells"]["vrt"] = "ATTACK-WINS"
    for line in diff_reports(report, mutated):
        print(f" drift: {line}")


if __name__ == "__main__":
    main()

"""Unit tests for the bytecode engine: compiler output, the compiled
cache, the VM's dispatch/timeout semantics, and the vectorized
``AddressSpace.locate`` fast path.

The CAPEC-10 taint-source contract lives here too: ``getenv``/``atoi``
and scripted-stdin plumbing are the attack surface the paper's
placement-new exploits enter through, so those seed families must
compile (never silently fall back to the interpreter) and must behave
byte-for-byte like the AST engine.
"""

import pytest

from repro.errors import SimulatedTimeout
from repro.execution import (
    BYTECODE_VERSION,
    BytecodeVM,
    UnsupportedConstruct,
    cache_stats,
    compile_source,
    compiled_for,
    disassemble,
    reset_cache,
    run_source,
    run_source_bytecode,
)
from repro.execution import vm as vm_module
from repro.execution.vm import source_digest
from repro.fuzz import OracleConfig, run_oracles
from repro.fuzz.seeds import generator_seeds
from repro.memory.segments import SegmentKind
from repro.runtime import Machine

RETURN_41 = "int main(int argc, int argv) {\n  return 40 + 1;\n}\n"

OVERFLOW = (
    "char pool[8];\n"
    "void clobber() {\n"
    "  int n;\n"
    "  cin >> n;\n"
    "  char *buf = new (pool) char[n];\n"
    "}\n"
)

ENV_SIZED = (
    "char pool[16];\n"
    "int main(int argc, int argv) {\n"
    '  char *raw = getenv("PAYLOAD_LIMIT");\n'
    "  int n = atoi(raw);\n"
    "  char *buf = new (pool) char[n];\n"
    "  return n;\n"
    "}\n"
)


def _taint_seeds():
    return [s for s in generator_seeds(20260808) if s.family == "taint-source"]


def _observe(source, stdin, use_vm, entry="main", args=(0, 0)):
    machine = Machine()
    try:
        if use_vm:
            _, outcome, engine = run_source_bytecode(
                source, entry=entry, args=args, machine=machine, stdin=stdin
            )
            assert engine == "bytecode"
        else:
            _, outcome = run_source(
                source, entry=entry, args=args, machine=machine, stdin=stdin
            )
        return ("ok", outcome.return_value, outcome.steps, tuple(machine.events))
    except Exception as error:
        return ("exc", type(error).__name__, str(error), tuple(machine.events))


class TestCompiler:
    def test_compiles_to_linear_code(self):
        compiled = compile_source(RETURN_41)
        assert "main" in compiled.function_index
        main = compiled.function_list[compiled.function_index["main"]]
        code = main.code
        assert code and all(len(instr) == 3 for instr in code)
        assert compiled.instruction_count == sum(
            len(f.code) for f in compiled.function_list
        ) + sum(len(f.code) for f in compiled.methods.values())
        assert compiled.version == BYTECODE_VERSION

    def test_disassemble_names_opcodes(self):
        compiled = compile_source(RETURN_41)
        main = compiled.function_list[compiled.function_index["main"]]
        listing = disassemble(main.code)
        assert any("RET" in line for line in listing)
        assert any("PUSH" in line for line in listing)

    def test_unsupported_construct_is_typed(self):
        # The class exists for callers to catch; the fixed corpora never
        # trigger it (tests/test_bytecode_parity.py proves that), so
        # exercise the raise path directly.
        with pytest.raises(UnsupportedConstruct):
            raise UnsupportedConstruct("statement Goto")


class TestCompiledCache:
    def setup_method(self):
        reset_cache()

    def test_hit_and_miss_counters(self):
        compiled_for(RETURN_41)
        compiled_for(RETURN_41)
        stats = cache_stats()
        assert stats["compiles"] == 1
        assert stats["cache_misses"] == 1
        assert stats["cache_hits"] == 1
        assert stats["cache_size"] == 1
        assert stats["version"] == BYTECODE_VERSION

    def test_parse_error_cached_as_interpreter_fallback(self):
        compiled, note = compiled_for("int main( {")
        assert compiled is None and note == ""
        # The decision is cached: a second ask is a hit, not a reparse.
        compiled_for("int main( {")
        stats = cache_stats()
        assert stats["cache_misses"] == 1
        assert stats["cache_hits"] == 1
        assert stats["compiles"] == 0  # a parse error never compiled

    def test_unsupported_falls_back_with_note(self, monkeypatch):
        def refuse(program, symbols=None):
            raise UnsupportedConstruct("statement Weird")

        monkeypatch.setattr(vm_module, "compile_program", refuse)
        compiled, note = compiled_for(RETURN_41)
        assert compiled is None
        assert note == "fallback:unsupported"
        assert cache_stats()["fallbacks"] == 1

    def test_compiler_crash_counts_and_names_source(self, monkeypatch):
        def crash(program, symbols=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(vm_module, "compile_program", crash)
        compiled, note = compiled_for(RETURN_41)
        assert compiled is None
        assert note == f"compile-error:{source_digest(RETURN_41)[:12]}"
        assert cache_stats()["compile_errors"] == 1

    def test_run_source_bytecode_falls_back_transparently(self, monkeypatch):
        monkeypatch.setattr(
            vm_module,
            "compile_program",
            lambda program, symbols=None: (_ for _ in ()).throw(
                UnsupportedConstruct("no")
            ),
        )
        _, outcome, engine = run_source_bytecode(RETURN_41)
        assert engine == "ast"
        assert outcome.return_value == 41


class TestVMSemantics:
    def setup_method(self):
        reset_cache()

    def test_return_value_and_steps_match_interpreter(self):
        assert _observe(RETURN_41, (), False) == _observe(RETURN_41, (), True)

    def test_fault_parity_on_placement_overflow(self):
        ast_run = _observe(OVERFLOW, (32,), False, entry="clobber", args=())
        vm_run = _observe(OVERFLOW, (32,), True, entry="clobber", args=())
        assert ast_run == vm_run

    def test_timeout_raised_at_identical_budget(self):
        spin = "int main(int argc, int argv) {\n  while (true) { argc = argc + 1; }\n  return 0;\n}\n"
        for budget in (100, 101, 257):
            ast_run = _observe(spin, (), False)
            machine = Machine()
            with pytest.raises(SimulatedTimeout) as caught:
                run_source_bytecode(spin, machine=machine, step_budget=budget)
            assert ast_run[0] == "exc" and ast_run[1] == "SimulatedTimeout"
            assert caught.value.args and str(budget) in str(caught.value)

    def test_unknown_entry_raises_keyerror(self):
        compiled, _ = compiled_for(RETURN_41)
        vm = BytecodeVM(compiled)
        with pytest.raises(KeyError):
            vm.run("no_such_function")


class TestTaintSourceParity:
    """CAPEC-10: attacker-controlled sizes arriving via getenv/atoi,
    argc, or a laundering helper must not push the fast engine onto the
    slow path, and must observe identical taint events."""

    def test_taint_family_always_compiles(self):
        reset_cache()
        seeds = _taint_seeds()
        assert seeds, "generator no longer emits the taint-source family"
        for seed in seeds:
            compiled, note = compiled_for(seed.source)
            assert compiled is not None and note == "", (seed.label, note)

    @pytest.mark.parametrize(
        "seed", _taint_seeds(), ids=lambda s: f"taint-{s.label}"
    )
    def test_taint_family_oracle_parity(self, seed):
        on_ast = run_oracles(seed.source, seed.stdin, OracleConfig(engine="ast"))
        on_vm = run_oracles(
            seed.source, seed.stdin, OracleConfig(engine="bytecode")
        )
        assert on_vm.dynamic.engine_note == ""
        assert on_ast.valid == on_vm.valid
        assert on_ast.dynamic.events == on_vm.dynamic.events
        assert on_ast.dynamic.fault == on_vm.dynamic.fault
        assert on_ast.divergence_kind == on_vm.divergence_kind

    def test_getenv_atoi_consume_scripted_stdin_identically(self):
        ast_run = _observe(ENV_SIZED, (9, 5), False)
        vm_run = _observe(ENV_SIZED, (9, 5), True)
        assert ast_run == vm_run
        assert ast_run[1] == 9  # first token fed the env read
        assert "getenv()" in ast_run[3]

    def test_oversized_env_token_faults_identically(self):
        ast_run = _observe(ENV_SIZED, (40,), False)
        vm_run = _observe(ENV_SIZED, (40,), True)
        assert ast_run == vm_run


class TestLocateFastPath:
    """The vectorized bulk-access contract: ``locate`` hands out a raw
    view only when that is indistinguishable from going through
    ``read``/``write`` — else it must return None."""

    def test_locate_resolves_mapped_data(self):
        machine = Machine()
        segment = machine.space.segment(SegmentKind.DATA)
        located = machine.space.locate(segment.base, 4)
        assert located is not None
        view, offset = located
        machine.space.write(segment.base, b"\x2a\x00\x00\x00")
        assert bytes(view[offset : offset + 4]) == b"\x2a\x00\x00\x00"

    def test_locate_refuses_unmapped_and_straddling(self):
        machine = Machine()
        segment = machine.space.segment(SegmentKind.DATA)
        assert machine.space.locate(segment.end + 0x100000, 1) is None
        assert machine.space.locate(segment.end - 2, 4) is None

    def test_locate_enforces_write_permission(self):
        machine = Machine()
        text = machine.space.segment(SegmentKind.TEXT)
        assert machine.space.locate(text.base, 4) is not None
        assert machine.space.locate(text.base, 4, writable=True) is None

    def test_locate_disabled_while_hooked(self):
        machine = Machine()
        segment = machine.space.segment(SegmentKind.DATA)
        hook = lambda address, data, is_write: None  # noqa: E731
        machine.space.add_access_hook(hook)
        assert machine.space.locate(segment.base, 4) is None
        machine.space.remove_access_hook(hook)
        assert machine.space.locate(segment.base, 4) is not None

"""Protection techniques (paper Section 5) and their evaluation."""

from .base import (
    ALL_DEFENSES,
    BASELINE,
    CORRECT_CODING,
    NX_DEFENSE,
    SANITIZE_DEFENSE,
    SHADOW_DEFENSE,
    SHADOW_STACK_DEFENSE,
    STACKGUARD_DEFENSE,
    TAGGING_DEFENSE,
    VRT_DEFENSE,
    VTABLE_INTEGRITY_DEFENSE,
    Defense,
    EvaluationMatrix,
    MatrixCell,
    defense_by_name,
    evaluate_matrix,
)
from .aslr import StaleAddressAttack, aslr_machine, run_aslr_comparison
from .leak_discipline import LeakOutcome, run_leak_comparison
from .libsafe import InterceptionRecord, LibSafePlacementGuard
from .shadow_stack import ReturnAddressTampering, ShadowCallStack, ShadowReturnStack
from .tagging import MemoryTagging, TagMismatchFault
from .vrt import VariableRecordTable, VrtBoundsViolation
from .vtable_integrity import VtableIntegrityGuard, VtableIntegrityViolation

__all__ = [
    "ALL_DEFENSES",
    "BASELINE",
    "CORRECT_CODING",
    "Defense",
    "EvaluationMatrix",
    "InterceptionRecord",
    "LeakOutcome",
    "LibSafePlacementGuard",
    "MatrixCell",
    "MemoryTagging",
    "NX_DEFENSE",
    "SANITIZE_DEFENSE",
    "SHADOW_DEFENSE",
    "SHADOW_STACK_DEFENSE",
    "STACKGUARD_DEFENSE",
    "TAGGING_DEFENSE",
    "VRT_DEFENSE",
    "VTABLE_INTEGRITY_DEFENSE",
    "ReturnAddressTampering",
    "ShadowCallStack",
    "ShadowReturnStack",
    "StaleAddressAttack",
    "TagMismatchFault",
    "VariableRecordTable",
    "VrtBoundsViolation",
    "aslr_machine",
    "run_aslr_comparison",
    "VtableIntegrityGuard",
    "VtableIntegrityViolation",
    "defense_by_name",
    "evaluate_matrix",
    "run_leak_comparison",
]

"""Arc injection and code injection — Section 3.6.2.

Arc injection (return-to-libc) re-aims the corrupted return address at an
*existing* function — here libc ``system``.  Code injection stores a
shellcode payload in the attacker-writable locals below the overflowed
object and aims the return address *into the stack*; it therefore needs
an executable stack, which is why the NX environment defeats it but not
the arc variant (exactly the classic split the paper cites from [22]).
"""

from __future__ import annotations

from ..cxx.types import CHAR
from ..runtime.shellcode import spawn_shell_payload
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment
from .stack_smash import selective_overwrite


class ArcInjectionAttack(AttackScenario):
    """Return-to-libc through the placement-new stack overflow."""

    name = "arc-injection"
    paper_ref = "§3.6.2"
    description = "corrupted return address re-aimed at libc system()"

    def execute(self, env: Environment) -> AttackResult:
        inner = selective_overwrite(env, target_symbol="system")
        result = inner.run(env)
        return AttackResult(
            name=self.name,
            paper_ref=self.paper_ref,
            environment=env.label,
            succeeded=result.succeeded,
            detected_by=result.detected_by,
            crashed=result.crashed,
            detail={"shell": result.succeeded, **result.detail},
        )


class CodeInjectionAttack(AttackScenario):
    """Shellcode in a stack local, return address aimed at the payload."""

    name = "code-injection"
    paper_ref = "§3.6.2"
    description = "shellcode injected into locals; return lands in the sled"

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        frame = machine.push_frame("addStudent")
        # The paper: "the size of all local variables in addStudent() is
        # enough to inject shell code" — a username scratch buffer.
        scratch = frame.local_array(CHAR, 64, "scratch")
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        # The victim copies "the username" into scratch — which is the
        # attacker's payload bytes.
        payload = spawn_shell_payload(sled=16)
        machine.space.write(scratch.address, payload)

        gs = env.place(machine, stud, grad_cls)
        # Aim the return address into the middle of the NOP sled.  The
        # attacker computes which overflow word reaches the return slot
        # from the frame layout in the binary (here: across scratch).
        ret_index = (
            frame.slots.return_slot - gs.element_address("ssn", 0)
        ) // 4
        gs.set_element("ssn", ret_index, scratch.address + 4)

        exit_ = machine.pop_frame(frame)
        spawned = (
            exit_.execution is not None
            and exit_.execution.shellcode is not None
            and exit_.execution.shellcode.spawned_shell
        )
        return self.result(
            env,
            succeeded=spawned,
            machine=machine,
            hijacked=exit_.hijacked,
            payload_address=hex(scratch.address),
            steps=exit_.execution.shellcode.steps
            if exit_.execution and exit_.execution.shellcode
            else 0,
        )

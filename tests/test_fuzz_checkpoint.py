"""Tests for campaign checkpointing: kill-and-resume byte-identity,
torn-file recovery, version refusal, and the interrupt-handling CLI."""

import threading

import pytest

from repro.cli import fuzz_main, regress_main
from repro.fuzz import (
    CampaignCheckpoint,
    CampaignInterrupted,
    CheckpointError,
    CheckpointStore,
    DifferentialFuzzer,
    FuzzConfig,
    checkpoint_from_fuzzer,
    restore_fuzzer,
    run_campaign,
)
from repro.service import ServiceEngine

#: 180 iterations at batch 30 = two rounds (120 + 60): big enough to
#: interrupt mid-campaign, small enough for the test budget.
CONFIG = FuzzConfig(seed=3, iterations=180, minimize=False)
BATCH = 30


def _seeded_fuzzer(iterations=40):
    fuzzer = DifferentialFuzzer(
        FuzzConfig(seed=3, iterations=iterations, minimize=False)
    )
    fuzzer.run_seeds()
    return fuzzer


class TestCheckpointRoundtrip:
    def test_json_roundtrip_is_lossless(self):
        fuzzer = _seeded_fuzzer()
        before = checkpoint_from_fuzzer(
            fuzzer, batch_size=BATCH, round_index=0, remaining=40
        )
        after = CampaignCheckpoint.from_json(before.to_json())
        assert after.to_dict() == before.to_dict()

    def test_restore_rebuilds_identical_driver_state(self):
        fuzzer = _seeded_fuzzer()
        checkpoint = checkpoint_from_fuzzer(
            fuzzer, batch_size=BATCH, round_index=0, remaining=40
        )
        restored = restore_fuzzer(checkpoint)
        assert restored.coverage.sorted_keys() == fuzzer.coverage.sorted_keys()
        assert [inp.key() for inp in restored.corpus] == [
            inp.key() for inp in fuzzer.corpus
        ]
        assert restored._protected == fuzzer._protected
        assert restored.families == fuzzer.families
        assert sorted(restored.divergences) == sorted(fuzzer.divergences)
        assert restored.execs == fuzzer.execs
        assert restored.seeds == fuzzer.seeds
        assert restored.invalid == fuzzer.invalid

    def test_digest_tamper_is_refused(self):
        fuzzer = _seeded_fuzzer()
        checkpoint = checkpoint_from_fuzzer(
            fuzzer, batch_size=BATCH, round_index=1, remaining=10
        )
        data = checkpoint.to_dict()
        data["remaining"] = 9_999
        with pytest.raises(CheckpointError, match="digest"):
            CampaignCheckpoint.from_dict(data)

    def test_bad_schema_is_refused(self):
        with pytest.raises(CheckpointError, match="schema"):
            CampaignCheckpoint.from_dict({"schema": 99})
        with pytest.raises(CheckpointError, match="not JSON"):
            CampaignCheckpoint.from_json("{nope")


class TestCheckpointStore:
    def test_save_prunes_to_keep_limit(self, tmp_path):
        store = CheckpointStore(tmp_path)
        fuzzer = _seeded_fuzzer()
        for round_index in range(4):
            store.save(
                checkpoint_from_fuzzer(
                    fuzzer,
                    batch_size=BATCH,
                    round_index=round_index,
                    remaining=100 - round_index,
                )
            )
        names = [path.name for path in store.paths()]
        assert names == ["checkpoint-r000002.json", "checkpoint-r000003.json"]
        assert store.latest().round_index == 3

    def test_truncated_latest_falls_back_one_round(self, tmp_path):
        store = CheckpointStore(tmp_path)
        fuzzer = _seeded_fuzzer()
        for round_index in (0, 1):
            store.save(
                checkpoint_from_fuzzer(
                    fuzzer,
                    batch_size=BATCH,
                    round_index=round_index,
                    remaining=50,
                )
            )
        newest = store.path_for(1)
        newest.write_text(newest.read_text()[:80])  # simulate a torn write
        recovered = store.latest()
        assert recovered is not None
        assert recovered.round_index == 0

    def test_no_loadable_checkpoint_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.latest() is None
        store.path_for(0).write_text("garbage")
        assert store.latest() is None

    def test_save_leaves_no_tmp_litter(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(
            checkpoint_from_fuzzer(
                _seeded_fuzzer(), batch_size=BATCH, round_index=0, remaining=1
            )
        )
        assert list(tmp_path.glob("*.tmp")) == []


class TestKillAndResume:
    """The determinism flagship: interrupt anywhere, resume, and the
    report is byte-identical to an uninterrupted run."""

    @pytest.fixture(scope="class")
    def control(self):
        return run_campaign(CONFIG, batch_size=BATCH).to_json()

    @pytest.mark.parametrize("jobs", [0, 1, 4])
    def test_resumed_report_is_byte_identical(self, tmp_path, control, jobs):
        engine = (
            ServiceEngine(workers=jobs, use_cache=False) if jobs else None
        )
        try:
            with pytest.raises(CampaignInterrupted) as info:
                run_campaign(
                    CONFIG,
                    engine=engine,
                    batch_size=BATCH,
                    checkpoint_dir=tmp_path,
                    stop_after_rounds=1,
                )
            assert info.value.remaining > 0
            assert info.value.checkpoint_path is not None
            report = run_campaign(
                CONFIG,
                engine=engine,
                batch_size=BATCH,
                checkpoint_dir=tmp_path,
                resume=True,
            )
        finally:
            if engine is not None:
                engine.close()
        assert report.to_json() == control

    def test_stop_event_interrupts_before_first_round(self, tmp_path):
        stop = threading.Event()
        stop.set()
        with pytest.raises(CampaignInterrupted) as info:
            run_campaign(
                CONFIG,
                batch_size=BATCH,
                checkpoint_dir=tmp_path,
                stop_event=stop,
            )
        # Even a pre-round-0 stop leaves the post-seed baseline behind.
        assert info.value.round_index == 0
        assert CheckpointStore(tmp_path).latest() is not None

    def test_resuming_a_finished_campaign_refinalizes(self, tmp_path, control):
        report = run_campaign(
            CONFIG, batch_size=BATCH, checkpoint_dir=tmp_path
        )
        assert report.to_json() == control
        resumed = run_campaign(
            CONFIG, batch_size=BATCH, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.to_json() == control

    def test_resume_restores_checkpointed_config_and_batch_size(
        self, tmp_path
    ):
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                CONFIG,
                batch_size=BATCH,
                checkpoint_dir=tmp_path,
                stop_after_rounds=1,
            )
        # Deliberately wrong arguments on resume: the checkpoint wins,
        # otherwise the deterministic batch partition would fork.
        report = run_campaign(
            FuzzConfig(seed=999, iterations=5, minimize=True),
            batch_size=7,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert report.seed == CONFIG.seed
        assert report.iterations == CONFIG.iterations

    def test_resume_without_directory_or_checkpoint_fails(self, tmp_path):
        with pytest.raises(CheckpointError, match="checkpoint directory"):
            run_campaign(CONFIG, resume=True)
        with pytest.raises(CheckpointError, match="no usable checkpoint"):
            run_campaign(CONFIG, checkpoint_dir=tmp_path, resume=True)


class TestVersionRefusal:
    def _checkpoint_dir_with_stale_versions(self, tmp_path):
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                CONFIG,
                batch_size=BATCH,
                checkpoint_dir=tmp_path,
                stop_after_rounds=1,
            )
        store = CheckpointStore(tmp_path)
        checkpoint = store.latest()
        checkpoint.versions = dict(
            checkpoint.versions, detector="pn-detector/0.0-stale"
        )
        store.save(checkpoint)
        return tmp_path

    def test_stale_versions_refused_by_default(self, tmp_path):
        directory = self._checkpoint_dir_with_stale_versions(tmp_path)
        with pytest.raises(CheckpointError, match="different oracle versions"):
            run_campaign(CONFIG, checkpoint_dir=directory, resume=True)

    def test_skip_version_check_resumes_anyway(self, tmp_path):
        directory = self._checkpoint_dir_with_stale_versions(tmp_path)
        report = run_campaign(
            CONFIG,
            checkpoint_dir=directory,
            resume=True,
            skip_version_check=True,
        )
        assert report.iterations == CONFIG.iterations


class TestRecordErrorDegradation:
    def test_failing_store_counts_instead_of_aborting(self):
        class ExplodingStore:
            directory = "exploding://"

            def record_divergence(self, div, config, meta=None):
                raise OSError("disk on fire")

        config = FuzzConfig(seed=3, iterations=60, minimize=False)
        baseline = run_campaign(config)
        report = run_campaign(config, store=ExplodingStore())
        assert baseline.divergences, "campaign found nothing to record"
        assert report.record_errors == len(baseline.divergences)
        # Advisory only: the serialized report stays byte-identical.
        assert report.to_json() == baseline.to_json()


class TestCliCheckpointing:
    def test_stop_after_exits_130_then_resume_matches_control(
        self, tmp_path, capsys
    ):
        control = tmp_path / "control.json"
        args = [
            "run", "--seed", "3", "--iterations", "180", "--jobs", "0",
            "--batch-size", "30", "--no-minimize",
        ]
        assert fuzz_main(args + ["--out", str(control)]) == 0
        capsys.readouterr()
        ckpt = tmp_path / "ckpt"
        code = fuzz_main(
            args + ["--checkpoint-dir", str(ckpt), "--stop-after", "1"]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "checkpoint written to" in err
        assert "--resume" in err
        resumed = tmp_path / "resumed.json"
        code = fuzz_main(
            args
            + [
                "--checkpoint-dir", str(ckpt), "--resume",
                "--out", str(resumed),
            ]
        )
        assert code == 0
        assert resumed.read_text() == control.read_text()

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert fuzz_main(["run", "--resume", "--jobs", "0"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_missing_checkpoint_is_a_usage_error(self, tmp_path, capsys):
        code = fuzz_main(
            [
                "run", "--jobs", "0", "--resume",
                "--checkpoint-dir", str(tmp_path / "empty"),
            ]
        )
        assert code == 2
        assert "no usable checkpoint" in capsys.readouterr().err

    def test_fuzz_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli._fuzz_run", interrupted)
        assert fuzz_main(["run", "--jobs", "0"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_regress_keyboard_interrupt_exits_130(
        self, tmp_path, capsys, monkeypatch
    ):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli._regress_replay", interrupted)
        assert regress_main(["replay", "--store", str(tmp_path)]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestCheckpointMetrics:
    def test_checkpoint_metrics_on_both_surfaces(self, tmp_path):
        with ServiceEngine(workers=2, use_cache=False) as engine:
            with pytest.raises(CampaignInterrupted):
                engine.fuzz_campaign(
                    seed=3,
                    iterations=180,
                    minimize=False,
                    batch_size=30,
                    checkpoint_dir=tmp_path,
                    stop_after_rounds=1,
                )
            engine.fuzz_campaign(
                seed=3,
                iterations=180,
                minimize=False,
                batch_size=30,
                checkpoint_dir=tmp_path,
                resume=True,
            )
            snapshot = engine.metrics.snapshot()
            rendered = engine.metrics_prometheus()
        counters = snapshot["counters"]
        assert counters["fuzz.checkpoints_written"] >= 3
        assert counters["fuzz.checkpoint_resumes"] == 1
        assert snapshot["gauges"]["fuzz.checkpoint_round"] == 2
        assert "fuzz_checkpoints_written" in rendered
        assert "fuzz_checkpoint_resumes" in rendered

"""The campaign report: one deterministic JSON artifact per campaign.

Everything in the report is derived from the seed and the campaign
configuration — no wall-clock, no addresses, no set-iteration order —
so two runs of the same campaign produce byte-identical files.  That
property is load-bearing: CI diffs reports, and the triage workflow
(see docs/FUZZING.md) rewrites them in place.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .divergence import Divergence

SCHEMA = 2


@dataclass
class CampaignReport:
    """Aggregated outcome of one fuzzing campaign."""

    seed: int
    iterations: int
    execs: int = 0
    invalid: int = 0
    seeds: int = 0
    mutants_discarded: int = 0
    corpus_size: int = 0
    batches_failed: int = 0
    #: Iterations claimed by the config but never executed because
    #: their batch failed or timed out (see docs/FUZZING.md).
    iterations_lost: int = 0
    #: Times the live corpus hit ``max_corpus`` and evicted (or, when
    #: only seeds remained, dropped) a candidate to keep learning.
    corpus_saturated: int = 0
    coverage: tuple = ()
    divergences: list = field(default_factory=list)
    #: family → {"static": bool, "dynamic": bool}: did the family's
    #: labeled-vulnerable seed trip each oracle?
    families: dict = field(default_factory=dict)

    @property
    def untriaged(self) -> list:
        return [d for d in self.divergences if not d.triage]

    @property
    def divergence_rate(self) -> float:
        return len(self.divergences) / self.execs if self.execs else 0.0

    def sorted_divergences(self) -> list:
        return sorted(self.divergences, key=lambda d: (d.kind, d.fingerprint))

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "iterations": self.iterations,
            "execs": self.execs,
            "invalid": self.invalid,
            "seeds": self.seeds,
            "mutants_discarded": self.mutants_discarded,
            "corpus_size": self.corpus_size,
            "batches_failed": self.batches_failed,
            "iterations_lost": self.iterations_lost,
            "corpus_saturated": self.corpus_saturated,
            "coverage_size": len(self.coverage),
            "coverage": sorted(self.coverage),
            "divergences": [d.to_dict() for d in self.sorted_divergences()],
            "divergences_total": len(self.divergences),
            "untriaged": len(self.untriaged),
            "families": {
                family: dict(sorted(reach.items()))
                for family, reach in sorted(self.families.items())
            },
        }

    def to_json(self) -> str:
        """Canonical byte-stable encoding (the CI artifact)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignReport":
        report = cls(
            seed=data["seed"],
            iterations=data["iterations"],
            execs=data.get("execs", 0),
            invalid=data.get("invalid", 0),
            seeds=data.get("seeds", 0),
            mutants_discarded=data.get("mutants_discarded", 0),
            corpus_size=data.get("corpus_size", 0),
            batches_failed=data.get("batches_failed", 0),
            iterations_lost=data.get("iterations_lost", 0),
            corpus_saturated=data.get("corpus_saturated", 0),
            coverage=tuple(data.get("coverage", ())),
            families=dict(data.get("families", {})),
        )
        report.divergences = [
            Divergence.from_dict(entry) for entry in data.get("divergences", ())
        ]
        return report

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"campaign seed={self.seed} execs={self.execs} "
            f"(invalid {self.invalid}, discarded mutants "
            f"{self.mutants_discarded})",
        ]
        if self.batches_failed or self.iterations_lost:
            lines.append(
                f"!! {self.batches_failed} batch(es) failed: "
                f"{self.iterations_lost} of {self.iterations} configured "
                f"iterations never executed"
            )
        lines += [
            f"coverage: {len(self.coverage)} keys; corpus: "
            f"{self.corpus_size} inputs",
            "family reach (labeled-vulnerable seeds):",
        ]
        for family, reach in sorted(self.families.items()):
            static_mark = "static✓" if reach.get("static") else "static✗"
            dynamic_mark = "dynamic✓" if reach.get("dynamic") else "dynamic✗"
            lines.append(f"  {family:14s} {static_mark} {dynamic_mark}")
        lines.append(
            f"divergences: {len(self.divergences)} "
            f"({len(self.untriaged)} un-triaged)"
        )
        for div in self.sorted_divergences():
            status = "known-benign" if div.triage else "OPEN"
            lines.append(
                f"  [{status}] {div.fingerprint} {div.kind} "
                f"rules={','.join(div.static_rules) or '-'} "
                f"events={','.join(div.dynamic_events) or '-'} "
                f"(family {div.family or '?'}, ×{div.occurrences})"
            )
            if div.triage:
                lines.append(f"      triage: {div.triage}")
        return "\n".join(lines)

"""The consistent-hash ring: balance, minimal remap, cross-process identity."""

import subprocess
import sys

import pytest

from repro.cluster import HashRing

SAMPLE = 10_000


def keys(seed: int, count: int = SAMPLE):
    return [f"analyze-{seed:x}{index:06x}" for index in range(count)]


class TestAssignment:
    def test_every_key_gets_a_member_shard(self):
        ring = HashRing(["s0", "s1", "s2"])
        for key in keys(0, 500):
            assert ring.assign(key) in ("s0", "s1", "s2")

    def test_assignment_is_stable(self):
        ring = HashRing(["s0", "s1", "s2"])
        sample = keys(1, 200)
        assert [ring.assign(k) for k in sample] == [ring.assign(k) for k in sample]

    def test_join_order_does_not_matter(self):
        sample = keys(2, 500)
        forward = HashRing(["s0", "s1", "s2", "s3"])
        backward = HashRing(["s3", "s2", "s1", "s0"])
        assert [forward.assign(k) for k in sample] == [
            backward.assign(k) for k in sample
        ]

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
        spread = ring.spread(keys(3))
        for shard, count in spread.items():
            # with 64 vnodes each shard should hold 25% +/- 15 points
            assert 0.10 * SAMPLE < count < 0.40 * SAMPLE, (shard, spread)

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().assign("k")

    def test_membership_errors(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add("s0")
        with pytest.raises(ValueError):
            ring.add("")
        with pytest.raises(KeyError):
            ring.remove("ghost")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestRemapBound:
    """Killing 1 of N shards moves at most ~1.5/N of the keyspace."""

    @pytest.mark.parametrize("seed", [11, 23, 37, 59, 71])
    @pytest.mark.parametrize("shards", [3, 5, 8])
    def test_remove_moves_at_most_1_5_over_n(self, seed, shards):
        members = [f"s{index}" for index in range(shards)]
        ring = HashRing(members, vnodes=64)
        sample = keys(seed)
        before = {key: ring.assign(key) for key in sample}
        victim = members[seed % shards]
        ring.remove(victim)
        moved = sum(1 for key in sample if ring.assign(key) != before[key])
        assert moved <= 1.5 * SAMPLE / shards, (seed, shards, moved)

    def test_only_the_victims_keys_move(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        sample = keys(4)
        before = {key: ring.assign(key) for key in sample}
        successors = {
            key: ring.successor(key, exclude="s2")
            for key in sample
            if before[key] == "s2"
        }
        ring.remove("s2")
        for key in sample:
            if before[key] != "s2":
                assert ring.assign(key) == before[key]
            else:
                # a remapped key lands exactly on its predicted successor
                assert ring.assign(key) == successors[key]

    def test_added_shard_only_steals_keys(self):
        ring = HashRing(["s0", "s1", "s2"])
        sample = keys(5)
        before = {key: ring.assign(key) for key in sample}
        ring.add("s3")
        for key in sample:
            owner = ring.assign(key)
            assert owner == before[key] or owner == "s3"


class TestCrossProcessDeterminism:
    def test_digest_matches_in_a_fresh_interpreter(self):
        sample = keys(6, 1_000)
        local = HashRing(["s0", "s1", "s2"], vnodes=32).assignment_digest(sample)
        script = (
            "from repro.cluster import HashRing\n"
            "keys = [f'analyze-6{i:06x}' for i in range(1000)]\n"
            "print(HashRing(['s0','s1','s2'], vnodes=32)"
            ".assignment_digest(keys))\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert remote == local

    def test_digest_changes_with_config(self):
        sample = keys(7, 500)
        base = HashRing(["s0", "s1"], vnodes=32).assignment_digest(sample)
        assert HashRing(["s0", "s1"], vnodes=16).assignment_digest(sample) != base
        assert (
            HashRing(["s0", "s1", "s2"], vnodes=32).assignment_digest(sample) != base
        )

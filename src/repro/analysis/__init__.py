"""Static analysis of MiniC++ programs.

The constructive half of the paper's Section 5: a lexer/parser for the
C++ subset the listings use, a flow-sensitive placement-new detector
(:mod:`detector`), and reimplementations of the classic rule-based
scanners (:mod:`legacy_tools`) whose placement-new blind spot the paper
documents.
"""

from .ast_nodes import Program
from .cache import (
    analysis_cache_stats,
    cached_report,
    clear_analysis_caches,
    parse_cached,
    source_hash,
)
from .cfg import BasicBlock, ControlFlowGraph, build_cfg, placement_sites
from .detector import DETECTOR_VERSION, PlacementNewDetector, analyze_source
from .legacy_tools import (
    CLASSIC_RULES,
    LEGACY_RULE_VERSION,
    LegacyRule,
    LegacyRuleScanner,
    run_tool_suite,
    simulated_tool_suite,
)
from .lexer import Token, TokenKind, tokenize
from .parser import Parser, parse
from .reports import AnalysisReport, Finding, Severity, merge_reports
from .symbols import SymbolTable, constant_int
from .unparse import unparse_expr, unparse_program

__all__ = [
    "AnalysisReport",
    "BasicBlock",
    "CLASSIC_RULES",
    "DETECTOR_VERSION",
    "ControlFlowGraph",
    "Finding",
    "LEGACY_RULE_VERSION",
    "LegacyRule",
    "LegacyRuleScanner",
    "Parser",
    "PlacementNewDetector",
    "Program",
    "Severity",
    "SymbolTable",
    "Token",
    "TokenKind",
    "analysis_cache_stats",
    "analyze_source",
    "build_cfg",
    "cached_report",
    "clear_analysis_caches",
    "constant_int",
    "merge_reports",
    "parse",
    "parse_cached",
    "placement_sites",
    "run_tool_suite",
    "simulated_tool_suite",
    "source_hash",
    "tokenize",
    "unparse_expr",
    "unparse_program",
]

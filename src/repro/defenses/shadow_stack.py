"""Shadow call stack — the §5.2 alternative StackGuard comparison.

The paper: *"In order to provide non-executable stacks, a possible
approach is to use a return address stack, which holds the return
addresses of functions"* ([27] Wilander & Kamkar, [20] Ragel).  Unlike a
canary — which only notices writes *between* the locals and the saved
registers — a shadow stack compares the return address itself against a
protected copy, so the E4 selective overwrite cannot evade it.

This is the *machine-integrated* successor of the original wrapper
implementation: :func:`protect_machine` installs a
:class:`ShadowCallStack` on ``machine.call_shadow`` and the machine
itself consults it inside ``push_frame``/``pop_frame`` — the way a
hardware shadow stack (Intel CET) or kernel-protected region sits below
the program rather than being monkey-patched over it.  The protected
copies live outside the simulated address space, so no simulated write
can reach them.

The earlier implementation kept one strictly-LIFO list and compared the
popped entry blindly.  That desynchronizes on longjmp-style teardown —
an outer frame popped while abandoned inner frames still hold entries —
turning every subsequent check into a false positive (or worse, letting
a real tamper slide by against a stale entry).  arXiv 2412.16343
measures exactly this class of deployment bug in real shadow stacks.
:meth:`check_return` instead unwinds to the entry belonging to *this*
frame, discarding abandoned inner entries, and only then verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulatedProcessError
from ..runtime.frames import CallFrame
from ..runtime.machine import Machine


class ReturnAddressTampering(SimulatedProcessError):
    """The shadow stack rejected a mismatched return address."""

    def __init__(self, function: str, expected: int, found: int) -> None:
        self.function = function
        self.expected = expected
        self.found = found
        super().__init__(
            f"return-address stack mismatch in {function}: "
            f"stored {expected:#010x}, frame holds {found:#010x}"
        )


@dataclass
class _ShadowEntry:
    """One protected record: which activation, what it must return to."""

    frame_id: int
    function: str
    expected_return: int


@dataclass
class ShadowCallStack:
    """Protected copies of every live frame's return address.

    Entries are keyed by frame identity so a non-LIFO unwind (longjmp,
    exception teardown) discards the abandoned activations instead of
    misattributing their entries to the surviving frame.
    """

    _stack: list = field(default_factory=list)
    checks: int = 0
    tamper_events: int = 0
    unwound_frames: int = 0

    def record_call(self, frame: CallFrame) -> None:
        """Prologue half: push the protected copy."""
        self._stack.append(
            _ShadowEntry(
                frame_id=id(frame),
                function=frame.name,
                expected_return=frame.original_return,
            )
        )

    def check_return(self, frame: CallFrame, observed_return: int) -> None:
        """Epilogue half: verify the frame's return target.

        Abandoned inner entries (frames torn down by a longjmp without
        their epilogues running) are unwound silently — their returns
        never execute, so there is nothing to verify.  The *returning*
        frame's entry must match or the process aborts.
        """
        self.checks += 1
        while self._stack and self._stack[-1].frame_id != id(frame):
            self._stack.pop()
            self.unwound_frames += 1
        if self._stack:
            entry = self._stack.pop()
            expected = entry.expected_return
        else:
            # No entry survived for this frame (it was itself unwound by
            # an earlier non-LIFO pop): fall back to the value recorded
            # at call time, still held by the protected CallFrame.
            expected = frame.original_return
        if observed_return != expected:
            self.tamper_events += 1
            # Abort, as [20] does in hardware (strictest policy).
            raise ReturnAddressTampering(
                frame.name, expected=expected, found=observed_return
            )

    @property
    def depth(self) -> int:
        """Live protected frames."""
        return len(self._stack)


#: Backwards-compatible name — the pre-upgrade class was a machine
#: wrapper called ``ShadowReturnStack``; the integrated successor keeps
#: the old name importable for existing callers.
ShadowReturnStack = ShadowCallStack


def protect_machine(machine: Machine) -> ShadowCallStack:
    """Attach a shadow call stack to ``machine`` and return it."""
    shadow = ShadowCallStack()
    machine.call_shadow = shadow
    return shadow

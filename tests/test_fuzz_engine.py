"""Engine selection plumbing: FuzzConfig/checkpoint round-trips, batch
merging, the compile-error advisory surface, the ``engine-drift``
replay status, and the service-level engine knobs.

The parity of the engines themselves is proven in
tests/test_bytecode_parity.py; this file tests the *wiring* that lets
an operator pick an engine and trust the counters it reports.
"""

from pathlib import Path

from repro.execution import reset_cache
from repro.execution import vm as vm_module
from repro.fuzz import DifferentialFuzzer, FuzzConfig
from repro.fuzz.campaign import _merge_batch, run_batch
from repro.fuzz.checkpoint import (
    CampaignCheckpoint,
    checkpoint_from_fuzzer,
    restore_fuzzer,
)
from repro.fuzz.oracles import DynamicVerdict, _engine_drift
from repro.fuzz.seeds import FuzzInput
from repro.regress import RegressionStore, replay_bundle
from repro.service import ServiceEngine
from repro.service.metrics import MetricsRegistry, render_prometheus

REPO = Path(__file__).resolve().parent.parent
REGRESS_DIR = REPO / "corpus" / "regress"

TRIVIAL = "int main(int argc, int argv) {\n  return 7;\n}\n"


def _crash_compiler(monkeypatch):
    def crash(program, symbols=None):
        raise RuntimeError("synthetic compiler bug")

    reset_cache()
    monkeypatch.setattr(vm_module, "compile_program", crash)


class TestConfigPlumbing:
    def test_fuzz_config_engine_reaches_oracles(self):
        config = FuzzConfig(engine="both")
        assert config.oracle_config().engine == "both"
        assert FuzzConfig().engine == "ast"

    def test_checkpoint_roundtrips_engine_and_counters(self):
        fuzzer = DifferentialFuzzer(FuzzConfig(seed=3, engine="both"))
        fuzzer.compile_errors = 2
        fuzzer.first_compile_error = "compile-error:abcdef123456"
        fuzzer.engine_drift = 1
        checkpoint = checkpoint_from_fuzzer(
            fuzzer, batch_size=10, round_index=1, remaining=5
        )
        restored = restore_fuzzer(
            CampaignCheckpoint.from_json(checkpoint.to_json())
        )
        assert restored.config.engine == "both"
        assert restored.compile_errors == 2
        assert restored.first_compile_error == "compile-error:abcdef123456"
        assert restored.engine_drift == 1

    def test_pre_engine_checkpoint_still_loads(self):
        # Checkpoints written before the bytecode engine carry neither
        # the config key nor the counters; they must restore as ast.
        # (Built directly: from_dict would reject a hand-edited body on
        # its integrity digest, which is its own guarantee.)
        old = CampaignCheckpoint(
            config={"seed": 3, "iterations": 10},
            batch_size=10,
            round_index=0,
            remaining=5,
            counters={"execs": 4},
        )
        restored = restore_fuzzer(old)
        assert restored.config.engine == "ast"
        assert restored.compile_errors == 0
        assert restored.first_compile_error == ""
        assert restored.engine_drift == 0


class TestCompileErrorSurfacing:
    """A compiler crash must never be silent: the campaign counts it,
    names the first failing source hash, and exports the counter."""

    def test_observe_counts_and_names_first_failure(self, monkeypatch):
        _crash_compiler(monkeypatch)
        metrics = MetricsRegistry()
        fuzzer = DifferentialFuzzer(
            FuzzConfig(engine="bytecode"), metrics=metrics
        )
        fuzzer.observe(FuzzInput(source=TRIVIAL))
        fuzzer.observe(FuzzInput(source=TRIVIAL + "\n"))
        assert fuzzer.compile_errors == 2
        assert fuzzer.first_compile_error.startswith("compile-error:")
        first = fuzzer.first_compile_error
        fuzzer.observe(FuzzInput(source=TRIVIAL + "\n\n"))
        assert fuzzer.first_compile_error == first  # first stays first
        assert metrics.counter("bytecode.compile_errors").value == 3
        report = fuzzer.finalize()
        assert report.engine == "bytecode"
        assert report.compile_errors == 3
        assert report.first_compile_error == first

    def test_compile_error_still_produces_a_verdict(self, monkeypatch):
        # The fallback interpreter run keeps the campaign sound even
        # while the compiler is broken.
        _crash_compiler(monkeypatch)
        fuzzer = DifferentialFuzzer(FuzzConfig(engine="bytecode"))
        observation = fuzzer.observe(FuzzInput(source=TRIVIAL))
        assert observation.valid
        assert fuzzer.execs == 1

    def test_report_bytes_stay_engine_free(self, monkeypatch):
        _crash_compiler(monkeypatch)
        fuzzer = DifferentialFuzzer(FuzzConfig(engine="bytecode"))
        fuzzer.observe(FuzzInput(source=TRIVIAL))
        report = fuzzer.finalize()
        flat = repr(sorted(report.to_dict().items()))
        assert "compile-error" not in flat
        assert "engine" not in flat


def _batch_result(**overrides):
    """The minimal result dict a worker batch returns."""
    result = {
        "execs": 0,
        "invalid": 0,
        "discarded": 0,
        "new_coverage": (),
        "new_inputs": (),
        "divergences": (),
    }
    result.update(overrides)
    return result


class TestBatchMerging:
    def test_merge_accumulates_engine_counters(self):
        metrics = MetricsRegistry()
        fuzzer = DifferentialFuzzer(FuzzConfig(engine="both"), metrics=metrics)
        _merge_batch(
            fuzzer,
            _batch_result(
                compile_errors=2,
                first_compile_error="compile-error:aaa",
                engine_drift=3,
            ),
        )
        _merge_batch(
            fuzzer,
            _batch_result(
                compile_errors=1,
                first_compile_error="compile-error:bbb",
                engine_drift=0,
            ),
        )
        assert fuzzer.compile_errors == 3
        assert fuzzer.first_compile_error == "compile-error:aaa"
        assert fuzzer.engine_drift == 3
        assert metrics.counter("bytecode.compile_errors").value == 3
        assert metrics.counter("fuzz.engine_drift").value == 3

    def test_pre_engine_batch_result_merges(self):
        # A worker running older code returns no engine keys at all.
        fuzzer = DifferentialFuzzer(FuzzConfig())
        _merge_batch(fuzzer, _batch_result())
        assert fuzzer.compile_errors == 0
        assert fuzzer.engine_drift == 0

    def test_run_batch_reports_engine_counters(self):
        reset_cache()
        result = run_batch(
            {
                "seed": 11,
                "iterations": 4,
                "round": 0,
                "batch": 0,
                "engine": "both",
                "corpus": ((TRIVIAL, (), "corpus", ""),),
            }
        )
        assert result["compile_errors"] == 0
        assert result["first_compile_error"] == ""
        assert result["engine_drift"] == 0


class TestEngineDriftJudgement:
    def test_split_valid_and_fault_render_drift(self):
        ok = DynamicVerdict(valid=True)
        assert _engine_drift(ok, ok) == ""
        assert "valid:" in _engine_drift(ok, DynamicVerdict(valid=False))
        faulted = DynamicVerdict(valid=True, fault="canary smashed")
        drift = _engine_drift(ok, faulted)
        assert "fault:" in drift and "canary smashed" in drift
        noisy = DynamicVerdict(valid=True, events=("getenv()",))
        assert "events:" in _engine_drift(ok, noisy)

    def test_two_invalid_runs_never_drift(self):
        a = DynamicVerdict(valid=False, reason="parse error")
        b = DynamicVerdict(valid=False, reason="worded differently")
        assert _engine_drift(a, b) == ""

    def test_replay_reports_engine_drift_status(self, monkeypatch):
        store = RegressionStore(REGRESS_DIR, create=False)
        bundle = store.load(sorted(store.ids())[0])
        assert replay_bundle(bundle, engine="both").status == "ok"
        # Force the comparator to disagree: replay must surface it as
        # its own terminal status, not "ok" and not a corpus drift.
        import repro.fuzz.oracles as oracles

        monkeypatch.setattr(
            oracles, "_engine_drift", lambda p, s: "fault:ast=-|bytecode=x"
        )
        result = replay_bundle(bundle, engine="both")
        assert result.status == "engine-drift"
        assert "engines disagreed" in result.detail

    def test_engine_override_keeps_bundle_verdict(self):
        store = RegressionStore(REGRESS_DIR, create=False)
        for bundle_id in sorted(store.ids())[:3]:
            bundle = store.load(bundle_id)
            assert replay_bundle(bundle, engine="bytecode").status == "ok"


class TestServiceSurface:
    def test_exec_job_engine_roundtrip(self):
        with ServiceEngine(workers=1, use_cache=False) as engine:
            on_vm = engine.execute(TRIVIAL, engine="bytecode")
            on_ast = engine.execute(TRIVIAL)
        assert on_vm["engine"] == "bytecode"
        assert on_ast["engine"] == "ast"
        assert on_vm["return_value"] == on_ast["return_value"] == 7

    def test_metrics_snapshot_exports_bytecode_section(self):
        reset_cache()
        with ServiceEngine(workers=1, use_cache=False) as engine:
            engine.execute(TRIVIAL, engine="bytecode")
            snapshot = engine.metrics_snapshot()
        section = snapshot["bytecode"]
        assert section["compiles"] == 1
        assert section["version"] >= 1
        rendered = render_prometheus(snapshot)
        assert "repro_bytecode_compiles 1" in rendered
        assert "repro_bytecode_compile_errors 0" in rendered

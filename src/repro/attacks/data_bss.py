"""Data/bss overflow — paper Section 3.5, Listing 11.

Two uninitialized ``Student`` globals live adjacently in bss.
``addStudent(false)`` constructs ``stud2`` legitimately;
``addStudent(true)`` places a ``GradStudent`` at ``stud1`` and reads its
``ssn[]`` from attacker input — the three words land on the bytes right
after ``stud1``, i.e. on ``stud2``, corrupting its ``gpa``.
"""

from __future__ import annotations

from ..memory.encoding import decode_double, encode_int
from ..workloads.classes import make_student_classes, set_ssn
from .base import AttackResult, AttackScenario, Environment


class DataBssOverflowAttack(AttackScenario):
    """Listing 11: overflow of ``stud1``'s arena rewrites ``stud2.gpa``."""

    name = "data-bss-overflow"
    paper_ref = "§3.5, Listing 11"
    description = "GradStudent placed over bss Student; ssn[] hits the neighbour"

    def __init__(
        self,
        ssn_inputs: tuple[int, int, int] = (0x11111111, 0x22222222, 777),
    ) -> None:
        self.ssn_inputs = ssn_inputs

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        stud1 = machine.static_object(student_cls, "stud1")
        stud2 = machine.static_object(student_cls, "stud2")
        env.protect(machine, stud1.address, stud1.size)
        machine.stdin.feed(*self.ssn_inputs)

        # addStudent(false): legitimate construction of stud2.
        env.place(machine, stud2, student_cls, 3.5, 2009, 1)
        gpa_before = stud2.get("gpa")

        # addStudent(true): the vulnerable placement at stud1.
        st = env.place(machine, stud1, grad_cls, 4.0, 2009, 1)
        set_ssn(
            st,
            machine.stdin.read_int(),
            machine.stdin.read_int(),
            machine.stdin.read_int(),
        )

        gpa_after = stud2.get("gpa")
        # The paper's observable: ssn[0..1] reinterpreted as stud2.gpa.
        expected_bytes = encode_int(self.ssn_inputs[0], 4) + encode_int(
            self.ssn_inputs[1], 4
        )
        expected_gpa = decode_double(expected_bytes)
        corrupted = gpa_after != gpa_before
        return self.result(
            env,
            succeeded=corrupted,
            machine=machine,
            gpa_before=gpa_before,
            gpa_after=gpa_after,
            matches_injected_bytes=(
                gpa_after == expected_gpa
                or (gpa_after != gpa_after and expected_gpa != expected_gpa)
            ),
            year_after=stud2.get("year"),
        )

"""Tests for the stack region, local-area planner, and memory pools."""

import pytest

from repro.errors import ApiMisuseError, BoundsCheckViolation, StackOverflowError_
from repro.memory import (
    AddressSpace,
    CheckedMemoryPool,
    LocalAreaPlanner,
    MemoryPool,
    SegmentKind,
    StackRegion,
)


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def stack(space):
    return StackRegion(space)


class TestStackRegion:
    def test_grows_downward(self, stack):
        first = stack.push_region(16)
        second = stack.push_region(16)
        assert second < first

    def test_push_respects_alignment(self, stack):
        address = stack.push_region(10, alignment=8)
        assert address % 8 == 0

    def test_push_pointer_writes_value(self, space, stack):
        slot = stack.push_pointer(0xDEADBEEF)
        assert space.read_pointer(slot) == 0xDEADBEEF

    def test_exhaustion(self, stack):
        with pytest.raises(StackOverflowError_):
            stack.push_region(10**9)

    def test_pop_to_restores(self, stack):
        saved = stack.stack_pointer
        stack.push_region(64)
        stack.pop_to(saved)
        assert stack.stack_pointer == saved

    def test_pop_below_current_rejected(self, stack):
        saved = stack.stack_pointer
        stack.push_region(16)
        with pytest.raises(ApiMisuseError):
            stack.pop_to(stack.stack_pointer - 32)
        stack.pop_to(saved)

    def test_reserve_to(self, stack):
        target = stack.stack_pointer - 128
        stack.reserve_to(target)
        assert stack.stack_pointer == target

    def test_reserve_to_above_sp_rejected(self, stack):
        with pytest.raises(ApiMisuseError):
            stack.reserve_to(stack.stack_pointer + 8)

    def test_usage_accounting(self, stack):
        free_before = stack.bytes_free
        stack.push_region(32, alignment=4)
        assert stack.bytes_used >= 32
        assert stack.bytes_free <= free_before - 32


class TestLocalAreaPlanner:
    def test_first_declared_highest(self):
        planner = LocalAreaPlanner(0x1000)
        a = planner.place("a", 4, 4)
        b = planner.place("b", 4, 4)
        assert a.address > b.address

    def test_gap_above_accounts_padding(self):
        # int n; Student stud;  — stud is 8-aligned, creating the
        # Listing 15 padding hole above it.
        planner = LocalAreaPlanner(0x1000)
        planner.place("n", 4, 4)
        planner.place("stud", 16, 8)
        assert planner.gap_above("stud") == 4
        assert planner.gap_above("n") == 0

    def test_unknown_local_rejected(self):
        planner = LocalAreaPlanner(0x1000)
        with pytest.raises(ApiMisuseError):
            planner.gap_above("ghost")

    def test_total_size_and_padded(self):
        planner = LocalAreaPlanner(0x1000)
        planner.place("n", 4, 4)
        planner.place("stud", 16, 8)
        assert planner.total_size == 24
        assert planner.padded_total(16) == 32


class TestMemoryPool:
    def test_reserve_bumps(self, space):
        base = space.segment(SegmentKind.BSS).base
        pool = MemoryPool(space, base, 64)
        first = pool.reserve(16)
        second = pool.reserve(16)
        assert first == base
        assert second == base + 16

    def test_unchecked_pool_allows_oversize(self, space):
        # The vulnerability: reserving more than capacity succeeds.
        base = space.segment(SegmentKind.BSS).base
        pool = MemoryPool(space, base, 32)
        address = pool.reserve(64)
        assert address == base
        assert pool.stats.oversize_placements == 1

    def test_alignment(self, space):
        base = space.segment(SegmentKind.BSS).base
        pool = MemoryPool(space, base, 64)
        pool.reserve(3)
        aligned = pool.reserve(8, alignment=8)
        assert aligned % 8 == 0

    def test_reset_does_not_sanitize(self, space):
        # The Listing 21 information-leak precondition.
        base = space.segment(SegmentKind.BSS).base
        pool = MemoryPool(space, base, 32)
        address = pool.reserve(16)
        space.write(address, b"secretdata")
        pool.reset()
        again = pool.reserve(16)
        assert space.read(again, 10) == b"secretdata"

    def test_sanitize_clears(self, space):
        base = space.segment(SegmentKind.BSS).base
        pool = MemoryPool(space, base, 32)
        space.write(base, b"secret")
        pool.sanitize()
        assert space.read(base, 6) == b"\x00" * 6

    def test_checked_pool_rejects_oversize(self, space):
        base = space.segment(SegmentKind.BSS).base
        pool = CheckedMemoryPool(space, base, 32)
        pool.reserve(16)
        with pytest.raises(BoundsCheckViolation):
            pool.reserve(17)

    def test_checked_pool_allows_exact_fit(self, space):
        base = space.segment(SegmentKind.BSS).base
        pool = CheckedMemoryPool(space, base, 32)
        assert pool.reserve(32) == base

    def test_invalid_geometry(self, space):
        with pytest.raises(ApiMisuseError):
            MemoryPool(space, 0x10, 16)  # unmapped
        base = space.segment(SegmentKind.BSS).base
        with pytest.raises(ApiMisuseError):
            MemoryPool(space, base, 0)

"""``python -m repro.matrix`` — the repro-matrix front end."""

import sys

from ..cli import matrix_main

if __name__ == "__main__":
    sys.exit(matrix_main())

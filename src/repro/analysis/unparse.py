"""Pretty-printer: MiniC++ AST back to source text.

Useful for corpus tooling (the generator's programs can be normalized),
debugging (print what the parser actually understood), and the
round-trip property tests: ``parse(unparse(parse(src)))`` must analyze
identically to ``parse(src)``.
"""

from __future__ import annotations

from . import ast_nodes as ast

_INDENT = "  "


def unparse_program(program: ast.Program) -> str:
    """Render a whole translation unit."""
    parts: list[str] = []
    for cls in program.classes:
        parts.append(_class(cls))
    for decl in program.globals:
        parts.append(_statement(decl, 0).rstrip())
    for function in program.functions:
        parts.append(_function(function))
    return "\n".join(parts) + "\n"


def _type(type_ref: ast.TypeRef) -> str:
    return type_ref.name + "*" * type_ref.pointer_depth


def _declarator(type_ref: ast.TypeRef, name: str) -> str:
    text = f"{_type(type_ref)} {name}"
    if type_ref.is_array:
        text += f"[{unparse_expr(type_ref.array_size)}]"
    return text


def _class(cls: ast.ClassDecl) -> str:
    head = f"class {cls.name}"
    if cls.bases:
        head += " : " + ", ".join(f"public {base}" for base in cls.bases)
    lines = [head + " {", f"{_INDENT}public:"]
    for method in cls.methods:
        virtual = "virtual " if method.virtual else ""
        params = ", ".join(
            _declarator(param.type, param.name) for param in method.params
        )
        signature = (
            f"{_INDENT * 2}{virtual}{_type(method.return_type)} "
            f"{method.name}({params})"
        )
        if method.name == cls.name:  # constructor: no return type
            signature = f"{_INDENT * 2}{method.name}({params})"
        if method.body is None:
            lines.append(signature + ";")
        else:
            lines.append(signature + " " + _block(method.body, 2).lstrip())
    for field in cls.fields:
        lines.append(f"{_INDENT * 2}{_declarator(field.type, field.name)};")
    lines.append("};")
    return "\n".join(lines)


def _function(function: ast.FunctionDecl) -> str:
    params = ", ".join(
        _declarator(param.type, param.name) for param in function.params
    )
    head = f"{_type(function.return_type)} {function.name}({params}) "
    return head + _block(function.body, 0)


def _block(block: ast.Block, depth: int) -> str:
    lines = ["{"]
    for stmt in block.statements:
        lines.append(_statement(stmt, depth + 1))
    lines.append(_INDENT * depth + "}")
    return "\n".join(lines)


def _statement(stmt: ast.Stmt, depth: int) -> str:
    pad = _INDENT * depth
    if isinstance(stmt, ast.Block):
        return pad + _block(stmt, depth)
    if isinstance(stmt, ast.VarDecl):
        text = _declarator(stmt.type, stmt.name)
        if stmt.init is not None:
            text += f" = {unparse_expr(stmt.init)}"
        return f"{pad}{text};"
    if isinstance(stmt, ast.Assign):
        return f"{pad}{unparse_expr(stmt.target)} = {unparse_expr(stmt.value)};"
    if isinstance(stmt, ast.CinRead):
        chain = " >> ".join(unparse_expr(target) for target in stmt.targets)
        return f"{pad}cin >> {chain};"
    if isinstance(stmt, ast.CoutWrite):
        chain = " << ".join(unparse_expr(value) for value in stmt.values)
        return f"{pad}cout << {chain} << endl;"
    if isinstance(stmt, ast.ExprStmt):
        return f"{pad}{unparse_expr(stmt.expr)};"
    if isinstance(stmt, ast.DeleteStmt):
        brackets = "[] " if stmt.is_array else ""
        return f"{pad}delete {brackets}{unparse_expr(stmt.target)};"
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {unparse_expr(stmt.value)};"
    if isinstance(stmt, ast.If):
        text = f"{pad}if ({unparse_expr(stmt.cond)}) " + _block(
            stmt.then_body, depth
        )
        if stmt.else_body is not None:
            text += " else " + _block(stmt.else_body, depth)
        return text
    if isinstance(stmt, ast.While):
        return f"{pad}while ({unparse_expr(stmt.cond)}) " + _block(
            stmt.body, depth
        )
    if isinstance(stmt, ast.For):
        init = _statement(stmt.init, 0).strip() if stmt.init is not None else ";"
        if not init.endswith(";"):
            init += ";"
        cond = unparse_expr(stmt.cond) if stmt.cond is not None else ""
        step = ""
        if stmt.step is not None:
            step = _statement(stmt.step, 0).strip().rstrip(";")
        return f"{pad}for ({init} {cond}; {step}) " + _block(stmt.body, depth)
    raise ValueError(f"cannot unparse statement {type(stmt).__name__}")


def unparse_expr(expr: ast.Expr) -> str:
    """Render one expression (fully parenthesized where it matters)."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.StrLit):
        return '"' + expr.value.replace('"', '\\"') + '"'
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NullLit):
        return "NULL"
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Unary):
        if expr.op.startswith("post"):
            return f"{unparse_expr(expr.operand)}{expr.op[4:]}"
        return f"{expr.op}{unparse_expr(expr.operand)}"
    if isinstance(expr, ast.Binary):
        return (
            f"({unparse_expr(expr.left)} {expr.op} {unparse_expr(expr.right)})"
        )
    if isinstance(expr, ast.Member):
        op = "->" if expr.arrow else "."
        return f"{unparse_expr(expr.obj)}{op}{expr.name}"
    if isinstance(expr, ast.Index):
        return f"{unparse_expr(expr.base)}[{unparse_expr(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(unparse_expr(arg) for arg in expr.args)
        if expr.receiver is not None:
            return f"{unparse_expr(expr.receiver)}.{expr.func}({args})"
        return f"{expr.func}({args})"
    if isinstance(expr, ast.SizeOf):
        inner = expr.type_name if expr.type_name else unparse_expr(expr.expr)
        return f"sizeof({inner})"
    if isinstance(expr, ast.NewExpr):
        placement = (
            f"({unparse_expr(expr.placement)}) " if expr.placement is not None else ""
        )
        if expr.is_array:
            return f"new {placement}{expr.type_name}[{unparse_expr(expr.array_count)}]"
        args = ", ".join(unparse_expr(arg) for arg in expr.args)
        suffix = f"({args})" if expr.args else "()"
        return f"new {placement}{expr.type_name}{suffix}"
    raise ValueError(f"cannot unparse expression {type(expr).__name__}")

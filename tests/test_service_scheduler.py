"""Scheduler semantics: priorities, timeouts, retries, drain, caching.

Custom test-only job kinds are registered in the worker registry so the
scheduler's control flow can be exercised without real analysis work
(thread backend only — exactly what these tests use).
"""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.service import (
    AnalyzeJob,
    HIGH_PRIORITY,
    Job,
    JobFailed,
    JobStatus,
    LOW_PRIORITY,
    MetricsRegistry,
    QueueFull,
    ResultCache,
    Scheduler,
    TransientWorkerError,
    WorkerPool,
    register_worker,
)


@dataclass(frozen=True)
class ProbeJob(Job):
    """Test-only job; ``token`` differentiates cache keys."""

    token: str = ""

    KIND = "test-probe"


@dataclass(frozen=True)
class SleepJob(Job):
    duration: float = 0.0
    token: str = ""

    KIND = "test-sleep"


@dataclass(frozen=True)
class FlakyJob(Job):
    token: str = ""

    KIND = "test-flaky"


@pytest.fixture(autouse=True)
def _workers(request):
    """(Re)register the test worker kinds with fresh per-test state."""
    state = {"ran": [], "flaky_failures": 2, "lock": threading.Lock()}

    def probe(payload):
        with state["lock"]:
            state["ran"].append(payload.get("token", ""))
        return {"token": payload.get("token", "")}

    def sleepy(payload):
        time.sleep(payload["duration"])
        return probe(payload)

    def flaky(payload):
        with state["lock"]:
            if state["flaky_failures"] > 0:
                state["flaky_failures"] -= 1
                raise TransientWorkerError("worker lost (simulated)")
        return probe(payload)

    register_worker("test-probe", probe)
    register_worker("test-sleep", sleepy)
    register_worker("test-flaky", flaky)
    if request.cls is not None:
        request.cls.state = state
    yield state


class TestSchedulerBasics:
    state: dict

    def test_submit_and_result(self):
        with Scheduler(pool=WorkerPool(max_workers=2)) as scheduler:
            handle = scheduler.submit(ProbeJob(token="a"))
            assert handle.result(timeout=5) == {"token": "a"}
            outcome = handle.outcome()
            assert outcome.status is JobStatus.SUCCEEDED
            assert outcome.attempts == 1
            assert not outcome.from_cache

    def test_map_preserves_order(self):
        with Scheduler(pool=WorkerPool(max_workers=4)) as scheduler:
            handles = scheduler.map(
                [ProbeJob(token=str(index)) for index in range(16)]
            )
            assert [h.result(timeout=5)["token"] for h in handles] == [
                str(index) for index in range(16)
            ]

    def test_priority_order_with_single_worker(self):
        release = threading.Event()

        def blocker(payload):
            release.wait(timeout=5)
            return {}

        register_worker("test-block", blocker)

        @dataclass(frozen=True)
        class BlockJob(Job):
            KIND = "test-block"

        with Scheduler(pool=WorkerPool(max_workers=1)) as scheduler:
            blocking = scheduler.submit(BlockJob())
            low = scheduler.submit(ProbeJob(token="low"), priority=LOW_PRIORITY)
            high = scheduler.submit(ProbeJob(token="high"), priority=HIGH_PRIORITY)
            release.set()
            low.result(timeout=5)
            high.result(timeout=5)
            blocking.result(timeout=5)
        assert self.state["ran"] == ["high", "low"]

    def test_bounded_queue_rejects_overflow(self):
        release = threading.Event()

        def blocker(payload):
            release.wait(timeout=5)
            return {}

        register_worker("test-block", blocker)

        @dataclass(frozen=True)
        class BlockJob(Job):
            token: str = ""

            KIND = "test-block"

        scheduler = Scheduler(pool=WorkerPool(max_workers=1), max_queue=2)
        try:
            # one job occupies the worker; two fill the queue
            scheduler.submit(BlockJob(token="busy"))
            time.sleep(0.05)  # let the dispatcher pick it up
            scheduler.submit(BlockJob(token="q1"))
            scheduler.submit(BlockJob(token="q2"))
            with pytest.raises(QueueFull):
                scheduler.submit(BlockJob(token="q3"))
        finally:
            release.set()
            scheduler.shutdown()


class TestTimeoutsAndRetries:
    state: dict

    def test_timeout_marks_job_timed_out(self):
        with Scheduler(pool=WorkerPool(max_workers=1)) as scheduler:
            handle = scheduler.submit(SleepJob(duration=5.0), timeout=0.05)
            outcome = handle.outcome(timeout=5)
            assert outcome.status is JobStatus.TIMED_OUT
            assert "0.05" in outcome.error
            with pytest.raises(JobFailed):
                handle.result()

    def test_transient_failures_retry_with_backoff(self):
        naps = []
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            backoff_base=0.05,
            backoff_cap=10.0,
            max_retries=3,
            sleep=naps.append,
        ) as scheduler:
            outcome = scheduler.submit(FlakyJob(token="f")).outcome(timeout=5)
        assert outcome.status is JobStatus.SUCCEEDED
        assert outcome.attempts == 3  # two transient failures, then success
        assert naps == [0.05, 0.1]  # exponential backoff

    def test_backoff_respects_cap(self):
        self.state["flaky_failures"] = 3
        naps = []
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            backoff_base=0.05,
            backoff_cap=0.07,
            max_retries=5,
            sleep=naps.append,
        ) as scheduler:
            scheduler.submit(FlakyJob(token="f")).result(timeout=5)
        assert naps == [0.05, 0.07, 0.07]

    def test_retries_exhausted_fails(self):
        self.state["flaky_failures"] = 99
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            max_retries=1,
            sleep=lambda _: None,
        ) as scheduler:
            outcome = scheduler.submit(FlakyJob()).outcome(timeout=5)
        assert outcome.status is JobStatus.FAILED
        assert "TransientWorkerError" in outcome.error
        assert outcome.attempts == 2

    def test_worker_exception_fails_without_retry(self):
        def broken(payload):
            raise ValueError("bad payload")

        register_worker("test-broken", broken)

        @dataclass(frozen=True)
        class BrokenJob(Job):
            KIND = "test-broken"

        with Scheduler(pool=WorkerPool(max_workers=1)) as scheduler:
            outcome = scheduler.submit(BrokenJob()).outcome(timeout=5)
        assert outcome.status is JobStatus.FAILED
        assert outcome.attempts == 1
        assert "ValueError" in outcome.error


class TestLifecycleAndCache:
    state: dict

    def test_drain_waits_for_all(self):
        with Scheduler(pool=WorkerPool(max_workers=2)) as scheduler:
            handles = scheduler.map(
                [SleepJob(duration=0.01, token=str(i)) for i in range(8)]
            )
            scheduler.drain()
            assert all(handle.done() for handle in handles)

    def test_shutdown_without_wait_cancels_queued(self):
        release = threading.Event()

        def blocker(payload):
            release.wait(timeout=5)
            return {}

        register_worker("test-block", blocker)

        @dataclass(frozen=True)
        class BlockJob(Job):
            token: str = ""

            KIND = "test-block"

        scheduler = Scheduler(pool=WorkerPool(max_workers=1))
        running = scheduler.submit(BlockJob(token="run"))
        time.sleep(0.05)
        queued = scheduler.submit(BlockJob(token="queued"))
        release.set()
        scheduler.shutdown(wait=False)
        assert queued.outcome(timeout=5).status in (
            JobStatus.CANCELLED,
            JobStatus.SUCCEEDED,  # raced the dispatcher; either is legal
        )
        assert running.outcome(timeout=5).status is JobStatus.SUCCEEDED

    def test_submit_after_shutdown_rejected(self):
        scheduler = Scheduler(pool=WorkerPool(max_workers=1))
        scheduler.shutdown()
        with pytest.raises(RuntimeError):
            scheduler.submit(ProbeJob())

    def test_cache_short_circuits_second_submit(self):
        cache = ResultCache()
        with Scheduler(pool=WorkerPool(max_workers=1), cache=cache) as scheduler:
            first = scheduler.submit(ProbeJob(token="x")).outcome(timeout=5)
            second = scheduler.submit(ProbeJob(token="x")).outcome(timeout=5)
        assert not first.from_cache
        assert second.from_cache
        assert second.result == first.result
        assert self.state["ran"] == ["x"]  # worker ran exactly once

    def test_use_cache_false_bypasses(self):
        cache = ResultCache()
        with Scheduler(pool=WorkerPool(max_workers=1), cache=cache) as scheduler:
            scheduler.submit(ProbeJob(token="x")).result(timeout=5)
            outcome = scheduler.submit(
                ProbeJob(token="x"), use_cache=False
            ).outcome(timeout=5)
        assert not outcome.from_cache
        assert self.state["ran"] == ["x", "x"]

    def test_detector_version_bump_recomputes_analysis(self, tmp_path):
        source = "void f() {}"
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            cache=ResultCache(directory=str(tmp_path), version="d1"),
        ) as scheduler:
            scheduler.submit(AnalyzeJob(source=source)).result(timeout=5)
            warm = scheduler.submit(AnalyzeJob(source=source)).outcome(timeout=5)
            assert warm.from_cache
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            cache=ResultCache(directory=str(tmp_path), version="d2"),
        ) as scheduler:
            bumped = scheduler.submit(AnalyzeJob(source=source)).outcome(timeout=5)
        assert not bumped.from_cache  # version bump invalidated the entry

    def test_metrics_accounting(self):
        metrics = MetricsRegistry()
        cache = ResultCache()
        with Scheduler(
            pool=WorkerPool(max_workers=2), cache=cache, metrics=metrics
        ) as scheduler:
            for _ in range(2):
                scheduler.submit(ProbeJob(token="m")).result(timeout=5)
            scheduler.submit(SleepJob(duration=5.0), timeout=0.05).wait(5)
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["scheduler.jobs_submitted"] == 3
        assert counters["scheduler.jobs_succeeded"] == 1
        assert counters["scheduler.cache_hits"] == 1
        assert counters["scheduler.jobs_timed_out"] == 1
        assert snapshot["histograms"]["scheduler.job_seconds"]["count"] == 1

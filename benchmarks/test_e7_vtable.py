"""E7 — member overwrite and vtable-pointer subterfuge (§3.8).

Claims: a neighbouring object's member is rewritten (Listing 16); with
virtual classes the neighbour's vptr is the first word hit, letting the
attacker invoke arbitrary methods or crash the program (§3.8.2).
"""

from repro.attacks import (
    UNPROTECTED,
    MemberVariableAttack,
    VtableSubterfugeDataAttack,
    VtableSubterfugeStackAttack,
)

from conftest import print_table


def run_experiment():
    member = MemberVariableAttack().run(UNPROTECTED)
    vtable_hijack = VtableSubterfugeDataAttack(fake_vtable=True).run(UNPROTECTED)
    vtable_crash = VtableSubterfugeDataAttack(fake_vtable=False).run(UNPROTECTED)
    vtable_stack = VtableSubterfugeStackAttack().run(UNPROTECTED)
    print_table(
        "E7: object modification and vtable subterfuge (§3.8)",
        ["attack", "outcome"],
        [
            ("member overwrite (L16)", f"first.gpa {member.detail['gpa_before']} -> {member.detail['gpa_after']:.6g}"),
            ("vptr subterfuge via bss", vtable_hijack.detail["outcome"]),
            ("vptr garbage via bss", vtable_crash.detail["outcome"]),
            ("vptr subterfuge via stack", f"dispatched to {vtable_stack.detail['dispatched_to']}"),
        ],
    )
    return member, vtable_hijack, vtable_crash, vtable_stack


def test_e7_shape(benchmark):
    member, hijack, crash, stack = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert member.succeeded
    # Both §3.8.2 payoffs: arbitrary method invocation and crash.
    assert hijack.succeeded and "system" in hijack.detail["outcome"]
    assert crash.succeeded and "crash" in crash.detail["outcome"]
    assert stack.succeeded and stack.detail["privileged"]

"""Tests for method execution and virtual dispatch in the executor."""

import pytest

from repro.analysis.parser import parse
from repro.core import construct
from repro.errors import ApiMisuseError, SegmentationFault
from repro.execution import Interpreter
from repro.workloads.corpus import VTABLE_VARIANT, _CLASSES


class TestMethodExecution:
    def test_method_reads_and_writes_fields(self):
        interp = Interpreter(
            parse(
                "class Counter { public: int n; "
                "int bump(int by) { n = n + by; return n; } };"
                "Counter c;"
                "int drive() { return c.bump(5); }"
            )
        )
        assert interp.run("drive").return_value == 5
        counter = interp.globals.lookup("c")
        assert interp.machine.space.read_int(counter.address) == 5

    def test_arrow_method_call(self):
        interp = Interpreter(
            parse(
                "class P { public: int x; int getX() { return x; } };"
                "int drive() { P *p = new P(); p->x = 9; return p->getX(); }"
            )
        )
        assert interp.run("drive").return_value == 9

    def test_run_method_helper(self):
        interp = Interpreter(
            parse("class P { public: int x; int twice() { return x * 2; } };")
        )
        lowered = interp.symbols.cxx_class("P")
        address = interp.machine.heap.allocate(4)
        interp.machine.space.write_int(address, 21)
        assert interp.run_method("P", "twice", address) == 42

    def test_unknown_method_rejected(self):
        interp = Interpreter(parse("class P { public: int x; };"))
        with pytest.raises(ApiMisuseError):
            interp.run_method("P", "nope", 0x1000)

    def test_listing10_style_internal_overflow_via_method(self):
        """Listing 10 executed: the method's placement + member writes
        corrupt the host object's second Student, internally."""
        interp = Interpreter(
            parse(
                _CLASSES
                + """
class MobilePlayer {
  public:
    Student stud1, stud2;
    int n;
    void addStudentPlayer(int s0, int s1) {
      GradStudent *st = new (&stud1) GradStudent(2.0, 2010, 1);
      st->ssn[0] = s0;
      st->ssn[1] = s1;
      ++n;
    }
};
MobilePlayer player;
void driver() {
  player.addStudentPlayer(1234, 5678);
}
"""
            )
        )
        player = interp.globals.lookup("player")
        interp.machine.space.write_double(player.address + 16, 3.25)
        interp.run("driver")
        assert interp.machine.space.read_double(player.address + 16) != 3.25
        assert interp.machine.space.read_int(player.address + 32) == 1  # ++n


class TestVirtualDispatchFromSource:
    def _build(self):
        interp = Interpreter(
            parse(
                VTABLE_VARIANT.source
                + """
void probe() {
  Student *p = &stud2;
  char *info = p->getInfo();
}
"""
            )
        )
        stud2 = interp.globals.lookup("stud2")
        construct(
            interp.machine, interp.symbols.cxx_class("Student"), stud2.address
        )
        return interp

    def test_legitimate_dispatch(self):
        interp = self._build()
        interp.run("probe")
        assert "dispatched Student::getInfo" in interp.machine.events

    def test_derived_override_selected_dynamically(self):
        interp = self._build()
        stud2 = interp.globals.lookup("stud2")
        construct(
            interp.machine, interp.symbols.cxx_class("GradStudent"), stud2.address
        )
        interp.run("probe")  # static type Student, dynamic GradStudent
        assert "dispatched GradStudent::getInfo" in interp.machine.events

    def test_corrupted_vptr_crashes_dispatch(self):
        """§3.8.2 executed from source: the overflow rewrites stud2's
        vptr; the next virtual call dies on the wild pointer."""
        interp = self._build()
        interp.machine.stdin.feed(0x41414141)
        interp.run("addStudent")
        with pytest.raises(SegmentationFault):
            interp.run("probe")

    def test_vptr_redirected_to_fake_vtable(self):
        """The arbitrary-method payoff, executed from source."""
        interp = self._build()
        machine = interp.machine
        from repro.cxx import UINT

        fake = machine.static_array(UINT, 2, "fake_table")
        target = machine.text.function_named("grantAdminAccess").address
        machine.space.write_pointer(fake.address, target)
        machine.stdin.feed(fake.address)
        interp.run("addStudent")
        interp.run("probe")
        assert "admin access granted" in machine.events

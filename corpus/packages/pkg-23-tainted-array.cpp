// package: pkg-23-tainted-array
// imports: pkg-01-leak, pkg-06-leak, pkg-20-helper
char pool[64];
void run() {
  char *buf = new (pool) char[9];
}

"""Runtime value and lvalue model for the MiniC++ executor."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..analysis.ast_nodes import TypeRef
from ..cxx.classdef import ClassDef
from ..cxx.types import CType
from ..errors import ApiMisuseError


@dataclass(frozen=True)
class LValue:
    """A resolved storage location: address + how to read/write it."""

    address: int
    ctype: Optional[CType] = None          # scalar/array element access
    class_def: Optional[ClassDef] = None   # object access (no direct decode)
    declared: Optional[TypeRef] = None     # for pointer-type bookkeeping

    def require_scalar(self) -> CType:
        if self.ctype is None:
            raise ApiMisuseError(
                f"location {self.address:#010x} is an object, not a scalar"
            )
        return self.ctype


@dataclass
class Variable:
    """One declared variable bound to simulated storage."""

    name: str
    address: int
    type_ref: TypeRef
    ctype: Optional[CType] = None
    class_def: Optional[ClassDef] = None
    #: Pointee class for pointer-to-class variables (static type used by
    #: ``ptr->member``); set from the declaration.
    pointee_class: Optional[ClassDef] = None
    size: int = 0


class Scope:
    """A chain of name → Variable maps (globals < function locals)."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self._parent = parent
        self._vars: dict[str, Variable] = {}

    def declare(self, variable: Variable) -> None:
        self._vars[variable.name] = variable

    def lookup(self, name: str) -> Optional[Variable]:
        scope: Optional[Scope] = self
        while scope is not None:
            found = scope._vars.get(name)
            if found is not None:
                return found
            scope = scope._parent
        return None

    def child(self) -> "Scope":
        return Scope(parent=self)


def truthy(value: Any) -> bool:
    """C truth: nonzero / non-null / non-empty."""
    if value is None:
        return False
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    return bool(value)

"""Address-space layout randomization — the probabilistic defense.

The paper's testbed (Ubuntu 10.04) shipped ASLR for the stack and heap;
the attacks as published assume known addresses.  This module makes the
assumption explicit and measurable: an :func:`aslr_machine` randomizes
segment bases per process, and :class:`StaleAddressAttack` models the
attacker whose recon came from a *different* process instance — the
hijacked return lands wherever the stale address falls now.

ASLR does not remove the vulnerability (the overflow still corrupts the
neighbour); it only randomizes the *payoff* of address-dependent
control-flow redirection, which the experiment quantifies as a success
probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..attacks.base import AttackResult, AttackScenario, Environment
from ..core.placement import placement_new
from ..errors import SimulatedProcessError
from ..memory.address_space import DEFAULT_LAYOUT
from ..memory.segments import SegmentKind
from ..runtime.machine import Machine, MachineConfig
from ..workloads.classes import make_student_classes

#: Randomization granularity: bases move in 64 KiB pages within a
#: 16 MiB window, a (scaled-down but proportionate) stand-in for the
#: 2^28-ish entropy of 32-bit Linux mmap randomization.
ASLR_PAGE = 0x10000
ASLR_SLOTS = 256


def randomized_layout(rng: random.Random) -> dict:
    """A segment layout with independently shifted text/heap/stack."""
    layout = dict(DEFAULT_LAYOUT)
    text_base, text_size = layout[SegmentKind.TEXT]
    shift = rng.randrange(ASLR_SLOTS) * ASLR_PAGE
    # Slide the whole image (text..heap) together, as PIE does, and the
    # stack independently.
    for kind in (SegmentKind.TEXT, SegmentKind.DATA, SegmentKind.BSS, SegmentKind.HEAP):
        base, size = layout[kind]
        layout[kind] = (base + shift, size)
    stack_base, stack_size = layout[SegmentKind.STACK]
    stack_shift = rng.randrange(ASLR_SLOTS) * ASLR_PAGE
    layout[SegmentKind.STACK] = (stack_base - stack_shift, stack_size)
    return layout


def aslr_machine(seed: int, config: MachineConfig | None = None) -> Machine:
    """A machine whose image layout is randomized by ``seed``."""
    rng = random.Random(seed)
    machine = Machine(config or MachineConfig())
    # Rebuild every subsystem against the randomized geometry (the
    # constructor wired them to the default layout).
    from ..core.placement import PlacementAuditLog
    from ..cxx.layout import LayoutEngine
    from ..cxx.text import TextImage
    from ..cxx.vtable import VTableBuilder
    from ..memory.address_space import AddressSpace
    from ..memory.heap import HeapAllocator
    from ..memory.stack import StackRegion
    from ..memory.tracker import AllocationTracker
    from ..runtime.canary import CanarySource
    from ..runtime.functions import install_standard_library
    from ..runtime.io import FileSystem, SimulatedStdin

    machine.space = AddressSpace(layout=randomized_layout(rng))
    machine.layouts = LayoutEngine()
    machine.text = TextImage(machine.space)
    machine.vtables = VTableBuilder(machine.text)
    machine.heap = HeapAllocator(machine.space)
    machine.stack = StackRegion(machine.space)
    machine.tracker = AllocationTracker()
    machine.placement_log = PlacementAuditLog()
    machine.canaries = CanarySource(
        machine.config.canary_policy, seed=machine.config.canary_seed
    )
    machine.stdin = SimulatedStdin()
    machine.files = FileSystem()
    machine.events = []
    machine.syscalls = []
    machine._globals = {}
    data = machine.space.segment(SegmentKind.DATA)
    bss = machine.space.segment(SegmentKind.BSS)
    machine._cursors = {SegmentKind.DATA: data.base, SegmentKind.BSS: bss.base}
    install_standard_library(machine)
    return machine


@dataclass
class AslrTrialOutcome:
    """One stale-address attempt against one randomized victim."""

    seed: int
    succeeded: bool
    crashed: bool
    stale_target: int
    actual_target: int


class StaleAddressAttack(AttackScenario):
    """The Listing 13 hijack with recon-then-attack across ASLR.

    The attacker learns ``system``'s address from their own copy of the
    binary (seed 0) and replays it against victims randomized with other
    seeds.  Without ASLR every trial lands; with it, only the collision
    cases do.
    """

    name = "aslr-stale-address"
    paper_ref = "(extension: the address-knowledge assumption, quantified)"
    description = "stale recon address vs randomized victim image"

    def __init__(self, trials: int = 40, recon_seed: int = 0) -> None:
        self.trials = trials
        self.recon_seed = recon_seed

    def _one_trial(self, victim: Machine, stale_target: int) -> AslrTrialOutcome:
        student_cls, grad_cls = make_student_classes()
        frame = victim.push_frame("addStudent")
        stud = frame.local_object(student_cls, "stud")
        gs = placement_new(victim, stud, grad_cls)
        ret_index = 1 if victim.config.save_frame_pointer else 0
        gs.set_element("ssn", ret_index, stale_target)
        actual = victim.text.function_named("system").address
        try:
            exit_ = victim.pop_frame(frame)
            succeeded = (
                exit_.execution is not None
                and exit_.execution.function_name == "system"
            )
            return AslrTrialOutcome(
                seed=0,
                succeeded=succeeded,
                crashed=False,
                stale_target=stale_target,
                actual_target=actual,
            )
        except SimulatedProcessError:
            return AslrTrialOutcome(
                seed=0,
                succeeded=False,
                crashed=True,
                stale_target=stale_target,
                actual_target=actual,
            )

    def execute(self, env: Environment) -> AttackResult:
        recon = aslr_machine(self.recon_seed, env.machine_config)
        stale_target = recon.text.function_named("system").address
        wins = 0
        crashes = 0
        for trial in range(self.trials):
            victim = aslr_machine(1000 + trial, env.machine_config)
            outcome = self._one_trial(victim, stale_target)
            wins += int(outcome.succeeded)
            crashes += int(outcome.crashed)
        return self.result(
            env,
            succeeded=(wins > 0),
            trials=self.trials,
            wins=wins,
            crashes=crashes,
            success_rate=wins / self.trials,
        )


def run_aslr_comparison(trials: int = 40) -> dict:
    """Stale-address success with and without randomization."""
    attack = StaleAddressAttack(trials=trials)
    with_aslr = attack.run(Environment(label="aslr"))

    # Control: every "randomized" victim uses the recon seed, i.e. the
    # deterministic layout the paper's attacks assume.
    control_attack = StaleAddressAttack(trials=trials, recon_seed=7)
    control_wins = 0
    recon = aslr_machine(7)
    stale = recon.text.function_named("system").address
    for _ in range(trials):
        victim = aslr_machine(7)
        control_wins += int(control_attack._one_trial(victim, stale).succeeded)

    return {
        "aslr_success_rate": with_aslr.detail["success_rate"],
        "aslr_crash_count": with_aslr.detail["crashes"],
        "deterministic_success_rate": control_wins / trials,
        "trials": trials,
    }

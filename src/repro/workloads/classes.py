"""The paper's running-example classes (Listing 1 and variants).

``Student`` and ``GradStudent`` appear throughout Sections 3–4; the
polymorphic variants (with ``virtual char* getInfo()``) drive the vtable
subterfuge of Section 3.8.2, and ``MobilePlayer`` is the internal-
overflow host of Listing 10.

Layout ground truth (asserted by tests, derived in DESIGN.md §4):

* plain ``Student``: 16 bytes (gpa@0, year@8, semester@12), align 8;
* plain ``GradStudent``: 32 bytes (base@0, ssn@16..27, 4B tail padding);
* virtual ``Student``: 24 bytes (vptr@0, gpa@8, year@16, semester@20);
* virtual ``GradStudent``: 40 bytes (base@0..23, ssn@24..35, padding).
"""

from __future__ import annotations

from typing import Any

from ..cxx.classdef import ClassDef, VirtualMethod, make_class
from ..cxx.layout import class_type
from ..cxx.object_model import Instance
from ..cxx.types import DOUBLE, INT, array_of


def _student_default_ctor(ctx: Any, inst: Instance) -> None:
    """``Student():gpa(0.0), year(0), semester(0) { }``."""
    inst.set("gpa", 0.0)
    inst.set("year", 0)
    inst.set("semester", 0)


def _student_value_ctor(
    ctx: Any, inst: Instance, gpa: float = 0.0, year: int = 0, semester: int = 0
) -> None:
    """``Student(double gpa, int year, int semester)``."""
    inst.set("gpa", gpa)
    inst.set("year", year)
    inst.set("semester", semester)


def _student_ctor(ctx: Any, inst: Instance, *args: Any) -> None:
    if not args:
        _student_default_ctor(ctx, inst)
    elif len(args) == 1 and isinstance(args[0], Instance):
        # Copy construction from a (possibly remote) Student-like object.
        source = args[0]
        inst.set("gpa", source.get("gpa"))
        inst.set("year", source.get("year"))
        inst.set("semester", source.get("semester"))
    else:
        _student_value_ctor(ctx, inst, *args)


def _grad_ctor(ctx: Any, inst: Instance, *args: Any) -> None:
    """``GradStudent() { }`` / ``GradStudent(double,int,int)`` /
    copy-from-Student (Listing 7).

    Mirrors the paper's class: the value constructor assigns the *base*
    members; ``ssn[]`` stays uninitialized until ``setSSN``/input.
    """
    if len(args) == 1 and isinstance(args[0], Instance):
        source = args[0]
        inst.set("gpa", source.get("gpa"))
        inst.set("year", source.get("year"))
        inst.set("semester", source.get("semester"))
    elif args:
        _student_value_ctor(ctx, inst, *args)
    else:
        # C++ runs the base default constructor.
        _student_default_ctor(ctx, inst)


def set_ssn(inst: Instance, ssn0: int, ssn1: int, ssn2: int) -> None:
    """``setSSN`` — writes the three SSN words (no bounds relevance)."""
    inst.set_element("ssn", 0, ssn0)
    inst.set_element("ssn", 1, ssn1)
    inst.set_element("ssn", 2, ssn2)


def _student_get_info(machine: Any, inst: Instance, *args: Any) -> str:
    """``char* Student::getInfo()``."""
    machine.record_event("Student::getInfo")
    return f"Student(gpa={inst.get('gpa')})"


def _grad_get_info(machine: Any, inst: Instance, *args: Any) -> str:
    """``char* GradStudent::getInfo()`` — includes the sensitive SSN."""
    machine.record_event("GradStudent::getInfo")
    return "GradStudent(ssn=***)"


def make_student_classes(virtual: bool = False) -> tuple[ClassDef, ClassDef]:
    """Fresh ``(Student, GradStudent)`` definitions.

    ``virtual=True`` adds ``virtual char* getInfo()`` to both, changing
    the layout (vptr first) exactly as Section 3.8.2 describes.
    """
    student_virtuals = (
        (VirtualMethod("getInfo", _student_get_info),) if virtual else ()
    )
    student = make_class(
        "Student",
        fields=[("gpa", DOUBLE), ("year", INT), ("semester", INT)],
        virtuals=student_virtuals,
        constructor=_student_ctor,
    )
    grad_virtuals = (
        (VirtualMethod("getInfo", _grad_get_info),) if virtual else ()
    )
    grad = make_class(
        "GradStudent",
        bases=[student],
        fields=[("ssn", array_of(INT, 3))],
        virtuals=grad_virtuals,
        constructor=_grad_ctor,
    )
    return student, grad


def make_mobile_player(student: ClassDef) -> ClassDef:
    """Listing 10's internal-overflow host:
    ``class MobilePlayer { Student stud1, stud2; int n; ... };``"""
    student_member = class_type(student)

    def _ctor(ctx: Any, inst: Instance) -> None:
        inst.set("n", 0)

    return make_class(
        "MobilePlayer",
        fields=[
            ("stud1", student_member),
            ("stud2", student_member),
            ("n", INT),
        ],
        constructor=_ctor,
    )


def make_someclass(payload_ints: int = 16) -> ClassDef:
    """Listing 8's ``Someclass`` — an aggregate whose size a remote
    object can inflate (we model the inflated shape directly)."""

    def _ctor(ctx: Any, inst: Instance, *values: Any) -> None:
        if len(values) == 1 and isinstance(values[0], Instance):
            # Copy construction: replicate the source's full extent —
            # the indirect-overflow vehicle of Listing 9.
            source = values[0]
            data = ctx.space.read(source.address, source.size)
            ctx.space.write(inst.address, data)
            return
        for index, value in enumerate(values[:payload_ints]):
            inst.set_element("payload", index, value)

    return make_class(
        f"Someclass{payload_ints}",
        fields=[("payload", array_of(INT, payload_ints))],
        constructor=_ctor,
    )

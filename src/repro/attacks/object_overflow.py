"""Object-overflow mechanics — Sections 3.1–3.3 (Listings 4–9).

These scenarios exercise each *route* by which an oversized object
reaches a placement site: direct construction, a serialized/remote
object, a remote-driven copy loop, the copy constructor, and indirect
construction through an intermediate aggregate.  The downstream effects
(what gets corrupted) are covered by the other attack modules; here the
observable is the overflow itself and its attacker pedigree.
"""

from __future__ import annotations

from ..cxx.types import INT, UINT
from ..serialization.json_codec import construct_from_remote
from ..serialization.remote import malicious_service
from ..taint.engine import TaintEngine
from ..workloads.classes import make_someclass, make_student_classes
from .base import AttackResult, AttackScenario, Environment


class ConstructionOverflowAttack(AttackScenario):
    """Listing 4: a plain oversize construction at a smaller arena."""

    name = "overflow-via-construction"
    paper_ref = "§3.1, Listing 4"
    description = "GradStudent constructed at &stud with no size check"

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        stud = machine.static_object(student_cls, "stud")
        sentinel = machine.static_scalar(UINT, "sentinel")
        machine.write_global("sentinel", 0xCAFED00D)
        env.protect(machine, stud.address, stud.size)

        st = env.place(machine, stud, grad_cls, 4.0, 2009, 1)
        st.set_element("ssn", 0, 0x31337)

        return self.result(
            env,
            succeeded=(machine.read_global("sentinel") != 0xCAFED00D),
            machine=machine,
            sentinel_after=hex(machine.read_global("sentinel")),
            object_size=st.size,
            arena_size=stud.size,
        )


class RemoteObjectOverflowAttack(AttackScenario):
    """Listings 5–6: a malicious service's object drives the overflow.

    The remote ``Student`` carries a lying course count ``n`` and an
    oversized ``courseid`` list; the victim's copy loop
    (``while (++i < remoteobj->n)``) writes them all.
    """

    name = "overflow-via-remote-object"
    paper_ref = "§3.2, Listings 5–6"
    description = "remote object's n drives an unbounded member copy"

    def __init__(self, course_count: int = 8) -> None:
        self.course_count = course_count

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        taint = TaintEngine(machine.space)
        service = malicious_service()
        remote = service.get_student(course_count=self.course_count)

        # The victim's Student gains an int courseid (as in Listing 6).
        from ..cxx.classdef import make_class
        from ..cxx.types import DOUBLE, array_of

        student_cls = make_class(
            "StudentWithCourse",
            fields=[
                ("gpa", DOUBLE),
                ("year", INT),
                ("semester", INT),
                ("courseid", array_of(INT, 2)),
            ],
        )
        stud = machine.static_object(student_cls, "stud")
        sentinel = machine.static_scalar(UINT, "sentinel")
        machine.write_global("sentinel", 0xCAFED00D)
        env.protect(machine, stud.address, stud.size)

        st = env.place(machine, stud, student_cls)
        # while (++i < remoteobj->n) *(st->courseid+i) = ...
        count = remote.get("n", 0)
        courses = remote.get("courseid", [])
        written = 0
        for index in range(count):
            st.set_element("courseid", index, courses[index])
            taint.mark(
                st.element_address("courseid", index), 4, *remote.labels
            )
            written += 1

        sentinel_after = machine.read_global("sentinel")
        corrupted = sentinel_after != 0xCAFED00D
        return self.result(
            env,
            succeeded=corrupted,
            machine=machine,
            remote_n=count,
            elements_written=written,
            sentinel_tainted=taint.is_tainted(sentinel.address, 4),
            sentinel_after=hex(sentinel_after),
        )


class CopyConstructorOverflowAttack(AttackScenario):
    """Listing 7: ``new (&stud) GradStudent(remoteobj)`` — the copy
    constructor materializes a subclass over the superclass arena."""

    name = "overflow-via-copy-constructor"
    paper_ref = "§3.2, Listing 7"
    description = "copy-construction from a remote object overflows the arena"

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        service = malicious_service()
        remote = service.get_student(gpa=2.2, year=2012, semester=2)

        stud = machine.static_object(student_cls, "stud")
        sentinel = machine.static_scalar(UINT, "sentinel")
        machine.write_global("sentinel", 0xCAFED00D)
        env.protect(machine, stud.address, stud.size)

        # Deserialize the remote object into a scratch heap Student, then
        # copy-construct a GradStudent from it at &stud.
        from ..core.new_expr import new_object

        scratch = new_object(machine, student_cls)
        construct_from_remote(machine, student_cls, scratch.address, remote)
        st = env.place(machine, stud, grad_cls, scratch)
        st.set_element("ssn", 0, 0xFEEDFACE)

        return self.result(
            env,
            succeeded=(machine.read_global("sentinel") != 0xCAFED00D),
            machine=machine,
            copied_gpa=st.get("gpa"),
            arena_size=stud.size,
            object_size=st.size,
        )


class IndirectConstructionOverflowAttack(AttackScenario):
    """Listings 8–9: the remote object inflates an *intermediate*
    aggregate, which is then placement-copied over the small arena."""

    name = "overflow-via-indirect-construction"
    paper_ref = "§3.3, Listings 8–9"
    description = "remote-inflated aggregate placement-copied over small arena"

    def __init__(self, inflated_words: int = 16) -> None:
        self.inflated_words = inflated_words

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        service = malicious_service()
        remote = service.get_aggregate(self.inflated_words)

        big_cls = make_someclass(self.inflated_words)
        small_cls = make_someclass(2)

        # Someclass *obj2 = new Someclass(remoteobj);  (heap, full size)
        from ..core.new_expr import new_object

        obj2 = new_object(machine, big_cls, *remote.get("payload", []))

        # The small arena and a tripwire neighbour.
        arena = machine.static_object(small_cls, "arena")
        sentinel = machine.static_scalar(UINT, "sentinel")
        machine.write_global("sentinel", 0xCAFED00D)
        env.protect(machine, arena.address, arena.size)

        # GradStudent-style indirect placement: copy obj2's full extent.
        placed = env.place(machine, arena, big_cls, obj2)

        return self.result(
            env,
            succeeded=(machine.read_global("sentinel") != 0xCAFED00D),
            machine=machine,
            intermediate_size=obj2.size,
            arena_size=arena.size,
        )

// package: pkg-17-direct
// imports: pkg-07-leak
class Small { public: int f0; };
class Big : public Small { public: float g0; float g1; int g2; float g3; };
void run() {
  Small arena;
  Big *p = new (&arena) Big();
}

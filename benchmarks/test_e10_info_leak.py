"""E10 — information leakage (§4.3, Listings 21–22).

Claims: a short user string placed over the password-file pool leaves
the remainder readable through ``store()``; a Student placed over a
retired GradStudent leaves its SSNs readable.  The leak size falls as
the attacker's own data grows (the sweep series), and sanitize-on-reuse
eliminates it.
"""

from repro.attacks import (
    SANITIZE,
    UNPROTECTED,
    ArrayInfoLeakAttack,
    ObjectInfoLeakAttack,
)

from conftest import print_table


def run_experiment():
    sweep_rows = []
    series = []
    for length in (2, 16, 64, 128, 200, 250):
        result = ArrayInfoLeakAttack(userdata="a" * length).run(UNPROTECTED)
        series.append((length, result.detail["leaked_bytes"]))
        sweep_rows.append((length, result.detail["leaked_bytes"]))
    print_table(
        "E10a: leaked password-file bytes vs attacker string length (Listing 21)",
        ["userdata length", "leaked bytes"],
        sweep_rows,
    )

    obj = ObjectInfoLeakAttack(ssn=(123, 45, 6789)).run(UNPROTECTED)
    sanitized = ArrayInfoLeakAttack(userdata="ab").run(SANITIZE)
    obj_sanitized = ObjectInfoLeakAttack().run(SANITIZE)
    print_table(
        "E10b: object leak and the sanitize-on-reuse countermeasure",
        ["case", "leak"],
        [
            ("GradStudent ssn[] via store(st)", obj.detail["leaked_ssn"]),
            ("array leak under sanitize-on-reuse", sanitized.detail["leaked_bytes"]),
            ("object leak under sanitize-on-reuse", "prevented" if not obj_sanitized.succeeded else "LEAKED"),
        ],
    )
    return series, obj, sanitized, obj_sanitized


def test_e10_shape(benchmark):
    series, obj, sanitized, obj_sanitized = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    # Monotone non-increasing leak as the attacker's data grows.
    leaks = [leak for _, leak in series]
    assert all(a >= b for a, b in zip(leaks, leaks[1:]))
    assert leaks[0] > 200  # nearly the whole pool with a 2-byte string
    assert obj.succeeded and obj.detail["leaked_ssn"] == [123, 45, 6789]
    assert sanitized.detail["leaked_bytes"] == 0
    assert not obj_sanitized.succeeded

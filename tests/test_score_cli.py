"""Tests for the repro-score front end."""

import json

import pytest

from repro.cli import score_main
from repro.score import DEMO_PACKAGES, render_package_source


@pytest.fixture()
def package_dir(tmp_path):
    for package in DEMO_PACKAGES:
        (tmp_path / f"{package.name}.cpp").write_text(
            render_package_source(package)
        )
    return str(tmp_path)


class TestRank:
    def test_rank_prints_table(self, package_dir, capsys):
        assert score_main(["rank", package_dir]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[1].startswith("core-pool")
        assert "2/7 packages flawed" in out

    def test_rank_json_is_byte_identical_across_runs(self, package_dir, capsys):
        score_main(["rank", package_dir, "--json"])
        first = capsys.readouterr().out
        score_main(["rank", package_dir, "--json"])
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert list(document) == sorted(document)

    def test_rank_json_is_byte_identical_across_jobs(self, package_dir, capsys):
        score_main(["rank", package_dir, "--json"])
        sequential = capsys.readouterr().out
        score_main(["rank", package_dir, "--json", "--jobs", "1"])
        one_worker = capsys.readouterr().out
        score_main(["rank", package_dir, "--json", "--jobs", "4"])
        four_workers = capsys.readouterr().out
        assert sequential == one_worker == four_workers

    def test_rank_demo_flag_needs_no_directory(self, capsys):
        assert score_main(["rank", "--demo"]) == 0
        assert "core-pool" in capsys.readouterr().out

    def test_rank_top_limits_rows(self, package_dir, capsys):
        score_main(["rank", package_dir, "--top", "2"])
        assert len(capsys.readouterr().out.splitlines()) == 4

    def test_rank_out_writes_file(self, package_dir, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert (
            score_main(["rank", package_dir, "--json", "--out", str(target)])
            == 0
        )
        document = json.loads(target.read_text())
        assert document["ranking"][0] == "core-pool"


class TestScore:
    def test_score_prints_cwe_capec_attribution(self, package_dir, capsys):
        assert score_main(["score", package_dir]) == 0
        out = capsys.readouterr().out
        assert "PN-NO-SANITIZE" in out
        assert "CAPEC-116" in out
        assert "CWE-200" in out

    def test_score_json_carries_fingerprint(self, package_dir, capsys):
        from repro.score import scoring_versions

        score_main(["score", package_dir, "--json"])
        document = json.loads(capsys.readouterr().out)
        assert document["fingerprint"] == scoring_versions()


class TestDiff:
    def _report(self, package_dir, capsys, attenuation="0.5"):
        score_main(
            ["rank", package_dir, "--json", "--attenuation", attenuation]
        )
        return capsys.readouterr().out

    def test_equivalent_reports_exit_zero(self, package_dir, tmp_path, capsys):
        text = self._report(package_dir, capsys)
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(text)
        after.write_text(text)
        assert score_main(["diff", str(before), str(after)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_changed_reports_exit_one(self, package_dir, tmp_path, capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(self._report(package_dir, capsys))
        after.write_text(self._report(package_dir, capsys, attenuation="0.0"))
        assert score_main(["diff", str(before), str(after)]) == 1
        assert "blast_radius" in capsys.readouterr().out


class TestBadInput:
    def test_missing_directory_exits_2(self, capsys):
        assert score_main(["rank", "/no/such/packages"]) == 2
        assert "no package directory" in capsys.readouterr().err

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        assert score_main(["rank", str(tmp_path)]) == 2
        assert "no *.cpp packages" in capsys.readouterr().err

    def test_cycle_exits_2(self, tmp_path, capsys):
        (tmp_path / "a.cpp").write_text("// imports: b\nvoid f() {}\n")
        (tmp_path / "b.cpp").write_text("// imports: a\nvoid f() {}\n")
        assert score_main(["rank", str(tmp_path)]) == 2
        assert "cycle" in capsys.readouterr().err

    def test_unknown_import_exits_2(self, tmp_path, capsys):
        (tmp_path / "a.cpp").write_text("// imports: ghost\nvoid f() {}\n")
        assert score_main(["rank", str(tmp_path)]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_bad_attenuation_exits_2(self, capsys):
        assert score_main(["rank", "--demo", "--attenuation", "2"]) == 2
        assert "--attenuation" in capsys.readouterr().err

    def test_negative_jobs_exits_2(self, capsys):
        assert score_main(["rank", "--demo", "--jobs", "-1"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_diff_on_non_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert score_main(["diff", str(bad), str(bad)]) == 2
        assert "not a score report" in capsys.readouterr().err

"""Async HTTP clients for the cluster: shard-facing and front-facing.

Both are raw ``asyncio`` streams speaking minimal HTTP/1.1 with
``Connection: close`` — one request per connection, no external
dependencies.  :class:`AsyncServiceClient` is the router's transport
to *subprocess shards* (each one a stock ``repro-serve``);
:class:`AsyncClusterClient` is the public client of the *cluster
front-end* and knows the two cluster-specific conventions: the
``X-Tenant`` header and 429 throttling (it waits out the server's
``retry_after`` a bounded number of times before giving up).

Connect and read phases get separate timeouts, mirroring the sync
:class:`~repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Optional, Tuple

from ..service.client import ServiceError, ServiceUnavailable


async def _read_response(reader: asyncio.StreamReader) -> Tuple[int, dict, bytes]:
    """Parse one HTTP/1.1 response: ``(status, headers, body)``."""
    status_line = await reader.readline()
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError(f"malformed HTTP status line: {status_line!r}")
    status = int(parts[1])
    headers: dict = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length")
    if length is not None:
        body = await reader.readexactly(int(length))
    else:
        body = await reader.read()
    return status, headers, body


class AsyncServiceClient:
    """One shard's JSON API over asyncio streams."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        read_timeout: float = 120.0,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict, bytes]:
        """One round trip: ``(status, response headers, body bytes)``.

        Transport failures raise ``OSError`` subclasses for the caller
        (the router treats them as a dead or partitioned shard).
        """
        payload = json.dumps(body).encode() if body is not None else b""
        request_lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            request_lines.append(f"{name}: {value}")
        blob = ("\r\n".join(request_lines) + "\r\n\r\n").encode() + payload
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self.connect_timeout,
        )
        try:
            writer.write(blob)
            await writer.drain()
            status, response_headers, response_body = await asyncio.wait_for(
                _read_response(reader), timeout=self.read_timeout
            )
        except asyncio.TimeoutError as error:
            raise TimeoutError(
                f"read from {self.host}:{self.port} timed out "
                f"after {self.read_timeout}s"
            ) from error
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):  # pragma: no cover
                pass
        return status, response_headers, response_body

    async def request_json(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> dict:
        """One round trip, raising :class:`ServiceError` on non-2xx."""
        status, response_headers, payload = await self.request(
            method, path, body, headers
        )
        if 200 <= status < 300:
            return json.loads(payload) if payload else {}
        try:
            document = json.loads(payload)
            message = document.get("error", f"status {status}")
            retry_after = document.get("retry_after")
        except ValueError:
            message, retry_after = f"status {status}", None
        if retry_after is None and "retry-after" in response_headers:
            try:
                retry_after = float(response_headers["retry-after"])
            except ValueError:
                retry_after = None
        raise ServiceError(status, str(message), retry_after=retry_after)

    # -- the shard protocol ------------------------------------------------

    async def healthz(self) -> dict:
        return await self.request_json("GET", "/healthz")

    async def metrics(self) -> dict:
        return await self.request_json("GET", "/metrics")

    async def cache_get(self, key: str) -> Optional[dict]:
        """Peer-fetch probe; a 404 is a miss, not an error."""
        try:
            return await self.request_json("GET", f"/cache/{key}")
        except ServiceError as error:
            if error.status == 404:
                return None
            raise

    async def cache_put(self, key: str, result: dict) -> bool:
        response = await self.request_json(
            "POST", f"/cache/{key}", {"result": result}
        )
        return bool(response.get("stored"))


class AsyncClusterClient:
    """Tenant-aware client of the ``repro-cluster`` front-end.

    Requests carry the tenant in ``X-Tenant``; a 429 answer is retried
    after waiting the server-provided ``retry_after`` (preferring the
    exact float in the JSON body over the coarser header), at most
    ``max_throttle_retries`` times.  ``sleep`` is injectable so quota
    tests verify the wait without actually waiting.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "",
        connect_timeout: float = 5.0,
        read_timeout: float = 300.0,
        max_throttle_retries: int = 4,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ):
        self._transport = AsyncServiceClient(
            host, port, connect_timeout=connect_timeout, read_timeout=read_timeout
        )
        self.tenant = tenant
        self.max_throttle_retries = max_throttle_retries
        self._sleep = sleep
        self.throttled_waits: list = []  # observed Retry-After values

    async def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        headers = {"X-Tenant": self.tenant} if self.tenant else None
        attempts = 0
        while True:
            try:
                return await self._transport.request_json(
                    method, path, body, headers
                )
            except ServiceError as error:
                if error.status != 429 or attempts >= self.max_throttle_retries:
                    raise
                attempts += 1
                wait = error.retry_after if error.retry_after is not None else 0.1
                self.throttled_waits.append(wait)
                await self._sleep(wait)

    # -- endpoints ---------------------------------------------------------

    async def healthz(self) -> dict:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> dict:
        return await self.request("GET", "/metrics")

    async def metrics_text(self) -> str:
        status, _, payload = await self._transport.request(
            "GET", "/metrics?format=prom"
        )
        if status != 200:
            raise ServiceError(status, payload.decode(errors="replace"))
        return payload.decode()

    async def cluster(self) -> dict:
        return await self.request("GET", "/cluster")

    async def analyze(
        self, source: str, label: str = "", legacy: bool = False
    ) -> dict:
        return await self.request(
            "POST",
            "/analyze",
            {"source": source, "label": label, "legacy": legacy},
        )

    async def sweep(self, sources, legacy: bool = False) -> dict:
        """Analyze ``(label, source)`` pairs; reports come back in order."""
        return await self.request(
            "POST",
            "/analyze",
            {
                "sources": [[label, source] for label, source in sources],
                "legacy": legacy,
            },
        )

    async def attacks(
        self, attack: Optional[str] = None, env: str = "unprotected"
    ) -> dict:
        body: dict = {"env": env}
        if attack:
            body["attack"] = attack
        return await self.request("POST", "/attacks", body)

    async def execute(self, source: str, **options) -> dict:
        body = {"source": source}
        body.update(options)
        return await self.request("POST", "/exec", body)

    async def drain(self, shard_id: str) -> dict:
        return await self.request("POST", "/admin/drain", {"shard": shard_id})

    async def kill(self, shard_id: str) -> dict:
        return await self.request("POST", "/admin/kill", {"shard": shard_id})


__all__ = [
    "AsyncClusterClient",
    "AsyncServiceClient",
    "ServiceError",
    "ServiceUnavailable",
]

"""E15 — the performance motivation and defense-cost ablations (§1, §5.1).

Claims: placement new into a pre-allocated pool is cheaper than heap
``new`` per object (the paper's stated reason the idiom exists), and the
§5.1 bounds check adds only a small constant per placement — the cost of
correctness.
"""

import pytest

from repro.core import (
    checked_placement_new,
    new_object,
    placement_new,
)
from repro.memory import MemoryPool, SegmentKind
from repro.runtime import Machine
from repro.workloads import make_student_classes

OBJECTS_PER_ROUND = 64


@pytest.fixture
def pool_machine():
    machine = Machine()
    student_cls, grad_cls = make_student_classes()
    base = machine.space.segment(SegmentKind.HEAP).base + 0x8000
    pool = MemoryPool(
        machine.space, base, OBJECTS_PER_ROUND * 16 + 64, name="bench-pool"
    )
    return machine, student_cls, pool


def test_e15_heap_new_throughput(benchmark, pool_machine):
    machine, student_cls, _ = pool_machine

    def allocate_batch():
        instances = [new_object(machine, student_cls) for _ in range(OBJECTS_PER_ROUND)]
        for instance in instances:
            machine.tracker.mark_freed(instance.address)
            machine.heap.free(instance.address)

    benchmark(allocate_batch)


def test_e15_pool_placement_throughput(benchmark, pool_machine):
    machine, student_cls, pool = pool_machine

    def place_batch():
        pool.reset()
        for _ in range(OBJECTS_PER_ROUND):
            address = pool.reserve(16, alignment=8)
            placement_new(machine, address, student_cls)

    benchmark(place_batch)


def test_e15_unchecked_placement(benchmark, pool_machine):
    machine, student_cls, pool = pool_machine
    address = pool.reserve(16, alignment=8)

    def place():
        placement_new(machine, address, student_cls)

    benchmark(place)


def test_e15_checked_placement(benchmark, pool_machine):
    machine, student_cls, pool = pool_machine
    address = pool.reserve(16, alignment=8)

    def place():
        checked_placement_new(machine, address, student_cls, arena_size=16)

    benchmark(place)


def test_e15_shape():
    """The non-timing half of the claim: a pool never calls the heap
    allocator on the hot path, so its work is O(1) bumps; heap new walks
    a free list.  Verified structurally (counters), with timings above.
    """
    machine = Machine()
    student_cls, _ = make_student_classes()
    base = machine.space.segment(SegmentKind.HEAP).base + 0x8000
    pool = MemoryPool(machine.space, base, 4096, name="shape-pool")
    allocations_before = machine.heap.allocation_count
    for _ in range(32):
        placement_new(machine, pool.reserve(16, alignment=8), student_cls)
    assert machine.heap.allocation_count == allocations_before
    assert pool.stats.placements == 32

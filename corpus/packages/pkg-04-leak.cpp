// package: pkg-04-leak
char pool[256];
void run() {
  readFile("/etc/passwd", pool, 256);
  memset(pool, 0, 256);
  char *userdata = new (pool) char[256];
  store(userdata);
}

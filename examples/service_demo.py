"""A tour of the repro.service job engine and the repro-serve API.

Runs entirely in-process: builds a ServiceEngine, sweeps the corpus in
parallel (cold, then cache-warm), decomposes the E14 matrix into
parallel cell jobs, then starts the HTTP server on an ephemeral port
and talks to it with the stdlib client.

    PYTHONPATH=src python examples/service_demo.py
"""

import threading
import time

from repro.service import ServiceClient, ServiceEngine, create_server

VULN = """
class Student { public: double gpa; int year, semester; };
class GradStudent : public Student { public: int ssn[3]; };
void addStudent(double gpa) {
  Student stud;
  GradStudent *st = new (&stud) GradStudent();
}
"""


def main() -> None:
    with ServiceEngine(workers=4, cache_dir=".repro-cache") as engine:
        # -- parallel corpus sweep, cold vs warm --------------------------
        started = time.perf_counter()
        reports = engine.corpus_sweep()
        cold = time.perf_counter() - started

        started = time.perf_counter()
        engine.corpus_sweep()
        warm = time.perf_counter() - started

        flagged = sum(1 for report in reports if report["flagged"])
        print(f"corpus sweep: {len(reports)} programs, {flagged} flagged")
        print(f"  cold {cold * 1000:.1f}ms → warm {warm * 1000:.1f}ms "
              f"(hit rate {engine.cache.hit_rate:.0%})")

        # -- single analysis (served from cache if repeated) --------------
        report = engine.analyze(VULN, label="listing4")
        print("listing4 findings:", [f["rule"] for f in report["findings"]])

        # -- the E14 matrix as parallel per-cell jobs ---------------------
        matrix = engine.matrix()
        print("attacks succeeding per defense:")
        for defense, wins in matrix["attacks_succeeding"].items():
            print(f"  {defense:20s} {wins}")

        # -- the HTTP front end -------------------------------------------
        server = create_server(engine, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
        print("healthz:", client.healthz())
        response = client.attacks(attack="overflow-via-construction",
                                  env="checked-placement")
        print("via HTTP:", response["name"], "→", response["summary"])
        snapshot = client.metrics()
        print("jobs succeeded:",
              snapshot["counters"]["scheduler.jobs_succeeded"],
              "| cache:", snapshot["cache"]["hits"], "hits /",
              snapshot["cache"]["misses"], "misses")
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()

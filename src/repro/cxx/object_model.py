"""Typed views over raw simulated memory: instances and arrays.

An :class:`Instance` is a (class definition, address) pair interpreted
through the layout engine — precisely what a C++ object *is*.  There is
deliberately **no** containment check between the instance's extent and
whatever arena it was placed into: once constructed, field writes go to
``address + offset`` no matter what lives there.  That fidelity is the
point — every attack in the paper is "field write whose offset exceeds
the arena".

Array element accessors follow C semantics too: ``get_element(i)``
computes ``base + i*sizeof(elem)`` without comparing ``i`` against the
declared length, mirroring the paper's Listing 6
(``*(st->courseid + i) = ...``).
"""

from __future__ import annotations

from typing import Any, Protocol

from ..errors import ApiMisuseError, LayoutError
from .classdef import ClassDef
from .layout import FieldSlot, LayoutEngine, RecordLayout
from .types import ArrayType, CType


class ObjectContext(Protocol):
    """What an :class:`Instance` needs from its environment.

    The runtime :class:`~repro.runtime.machine.Machine` satisfies this;
    tests may supply any object with the two attributes.
    """

    @property
    def space(self) -> Any:  # AddressSpace
        """The simulated address space."""

    @property
    def layouts(self) -> LayoutEngine:
        """The layout engine."""


class Instance:
    """A typed window onto ``layout.size`` bytes at ``address``."""

    def __init__(self, ctx: ObjectContext, class_def: ClassDef, address: int) -> None:
        self._ctx = ctx
        self._class_def = class_def
        self._address = address
        # Cached reference to the space's typed-guard list (mutated in
        # place by add/remove, so the cache never goes stale); None for
        # minimal test stubs.  Empty list == no guards == zero-cost path.
        self._guards = getattr(ctx.space, "_typed_guards", None)

    # -- identity ----------------------------------------------------------

    @property
    def address(self) -> int:
        """The object's base address (``this``)."""
        return self._address

    @property
    def class_def(self) -> ClassDef:
        """The static type this window interprets memory as."""
        return self._class_def

    @property
    def layout(self) -> RecordLayout:
        """The computed record layout."""
        return self._ctx.layouts.layout_of(self._class_def)

    @property
    def size(self) -> int:
        """``sizeof`` the static type."""
        return self.layout.size

    @property
    def end(self) -> int:
        """One past the object's last byte."""
        return self._address + self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self._class_def.name} @ {self._address:#010x}>"

    # -- field access -----------------------------------------------------

    def _slot(self, name: str) -> FieldSlot:
        return self.layout.slot(name)

    def field_address(self, name: str) -> int:
        """Absolute address of a field (own or inherited)."""
        return self._address + self._slot(name).offset

    def _check_strict_alignment(self, address: int, ctype: CType) -> None:
        """On strict-alignment targets (§2.5 item 4), a scalar access at
        a misaligned address is a bus error — the delayed 'program
        termination' a misaligned placement earns."""
        if (
            getattr(self._ctx.space, "strict_alignment", False)
            and ctype.alignment > 1
            and address % ctype.alignment != 0
        ):
            from ..errors import BusError

            raise BusError(address, ctype.alignment, "access")

    def get(self, name: str) -> Any:
        """Read a field's current value from memory."""
        slot = self._slot(name)
        address = self._address + slot.offset
        self._check_strict_alignment(address, slot.ctype)
        if self._guards:
            self._ctx.space.check_typed_access(
                self._address, address, slot.ctype.size, False
            )
        data = self._ctx.space.read(address, slot.ctype.size)
        return slot.ctype.decode(data)

    def set(self, name: str, value: Any) -> None:
        """Write a field.  The write is bounded only by the *field's*
        size — if the field itself extends past the arena the object was
        placed in, this is the overflow."""
        slot = self._slot(name)
        address = self._address + slot.offset
        self._check_strict_alignment(address, slot.ctype)
        if self._guards:
            self._ctx.space.check_typed_access(
                self._address, address, slot.ctype.size, True
            )
        self._ctx.space.write(address, slot.ctype.encode(value))

    def nested(self, name: str) -> "Instance":
        """A typed view of a class-type member (``this->stud1``).

        Requires the field to have been declared with a
        :class:`~repro.cxx.layout.ClassType`.
        """
        slot = self._slot(name)
        member_class = getattr(slot.ctype, "class_def", None)
        if member_class is None:
            raise ApiMisuseError(f"field '{name}' is not a class-type member")
        return Instance(self._ctx, member_class, self._address + slot.offset)

    # -- array-member access (C pointer arithmetic, unchecked) ------------

    def _array_slot(self, name: str) -> tuple[FieldSlot, ArrayType]:
        slot = self._slot(name)
        if not isinstance(slot.ctype, ArrayType):
            raise ApiMisuseError(f"field '{name}' is not an array")
        return slot, slot.ctype

    def element_address(self, name: str, index: int) -> int:
        """``&field[index]`` — computed without any bounds check."""
        slot, array_type = self._array_slot(name)
        return self._address + slot.offset + index * array_type.element.size

    def get_element(self, name: str, index: int) -> Any:
        """Read ``field[index]`` (unchecked, like C)."""
        _, array_type = self._array_slot(name)
        address = self.element_address(name, index)
        if self._guards:
            self._ctx.space.check_typed_access(
                self._address, address, array_type.element.size, False
            )
        data = self._ctx.space.read(address, array_type.element.size)
        return array_type.element.decode(data)

    def set_element(self, name: str, index: int, value: Any) -> None:
        """Write ``field[index]`` (unchecked, like C).

        With ``index`` past the declared length this writes beyond the
        field — and past the object, and past the arena — which is the
        mechanism behind Listings 6, 11, 12, 13 and friends.
        """
        _, array_type = self._array_slot(name)
        address = self.element_address(name, index)
        if self._guards:
            self._ctx.space.check_typed_access(
                self._address, address, array_type.element.size, True
            )
        self._ctx.space.write(address, array_type.element.encode(value))

    # -- vptr access ------------------------------------------------------

    def read_vptr(self) -> int:
        """The vtable pointer currently stored in the object."""
        layout = self.layout
        if not layout.has_vptr:
            raise LayoutError(f"{self._class_def.name} has no vptr")
        return self._ctx.space.read_pointer(
            self._address + layout.primary_vptr_offset
        )

    def write_vptr(self, value: int) -> None:
        """Overwrite the vtable pointer (what constructors — and
        attackers — do)."""
        layout = self.layout
        if not layout.has_vptr:
            raise LayoutError(f"{self._class_def.name} has no vptr")
        self._ctx.space.write_pointer(
            self._address + layout.primary_vptr_offset, value
        )

    # -- whole-object helpers ------------------------------------------------

    def raw_bytes(self) -> bytes:
        """The object's current representation."""
        return self._ctx.space.read(self._address, self.size)

    def as_type(self, other: ClassDef) -> "Instance":
        """Reinterpret the same memory as another class (a C++ cast —
        no conversion, no check: the weak typing the paper leans on)."""
        return Instance(self._ctx, other, self._address)

    def field_values(self) -> dict:
        """All named fields decoded (diagnostics and tests)."""
        return {slot.name: self.get(slot.name) for slot in self.layout.field_slots}


class CArrayView:
    """A typed window onto a raw C array (not a class member)."""

    def __init__(
        self, ctx: ObjectContext, element: CType, count: int, address: int
    ) -> None:
        if count <= 0:
            raise ApiMisuseError(f"array length must be positive, got {count}")
        self._ctx = ctx
        self._element = element
        self._count = count
        self._address = address
        self._guards = getattr(ctx.space, "_typed_guards", None)

    @property
    def address(self) -> int:
        """Base address of element 0."""
        return self._address

    @property
    def element(self) -> CType:
        """The element type."""
        return self._element

    @property
    def declared_count(self) -> int:
        """The length this view was created with (advisory only)."""
        return self._count

    @property
    def size(self) -> int:
        """Declared extent in bytes."""
        return self._count * self._element.size

    def element_address(self, index: int) -> int:
        """``&arr[index]``, unchecked."""
        return self._address + index * self._element.size

    def get(self, index: int) -> Any:
        """Read ``arr[index]``, unchecked."""
        address = self.element_address(index)
        if self._guards:
            self._ctx.space.check_typed_access(
                self._address, address, self._element.size, False
            )
        data = self._ctx.space.read(address, self._element.size)
        return self._element.decode(data)

    def set(self, index: int, value: Any) -> None:
        """Write ``arr[index]``, unchecked."""
        address = self.element_address(index)
        if self._guards:
            self._ctx.space.check_typed_access(
                self._address, address, self._element.size, True
            )
        self._ctx.space.write(address, self._element.encode(value))

    def read_all(self) -> list:
        """Decode the declared extent."""
        return [self.get(i) for i in range(self._count)]


def pointer_field_target(instance: Instance, name: str) -> int:
    """Convenience: read a pointer-typed field's target address."""
    value = instance.get(name)
    if not isinstance(value, int):
        raise ApiMisuseError(f"field '{name}' is not pointer-typed")
    return value

#!/usr/bin/env python
"""Execute the paper's listings from source and watch them misbehave.

The MiniC++ interpreter (repro.execution) runs the same source corpus
the static detector analyzes — so every section of the paper plays out
against live simulated memory, no hand-built scenario in between.

Run:  python examples/run_paper_listings.py
"""

from repro.errors import StackSmashingDetected
from repro.execution import run_source
from repro.runtime import CanaryPolicy, Machine, MachineConfig, password_file
from repro.workloads.corpus import (
    LISTING_11,
    LISTING_12,
    LISTING_13,
    LISTING_21,
    LISTING_23,
)


def banner(title: str) -> None:
    print(f"\n──── {title} " + "─" * max(0, 58 - len(title)))


def main() -> None:
    banner("Listing 11 — data/bss overflow, executed")
    interp, _ = run_source(
        LISTING_11.source, entry="addStudent", args=(False,),
        stdin=(0x11111111, 0x22222222, 777),
    )
    stud2 = interp.globals.lookup("stud2")
    print("stud2.gpa before:", interp.machine.space.read_double(stud2.address))
    interp.run("addStudent", True)
    print("stud2.gpa after: ", interp.machine.space.read_double(stud2.address))
    print("stud2.year after:", interp.machine.space.read_int(stud2.address + 8))

    banner("Listing 12 — heap overflow, executed")
    interp, _ = run_source(LISTING_12.source, stdin=(0x58585858, 0x59595959, 0x5A5A5A5A))
    name_var = interp.globals.lookup("name")
    name_addr = interp.machine.space.read_pointer(name_var.address)
    print("name after attack:", repr(interp.machine.space.read_c_string(name_addr)))
    print("heap metadata corrupted:", interp.machine.heap.is_corrupted())

    banner("Listing 13 — the §5.2 StackGuard experiment, executed")
    guarded = Machine(MachineConfig(canary_policy=CanaryPolicy.RANDOM))
    target = guarded.text.function_named("system").address
    try:
        run_source(LISTING_13.source, entry="addStudent", args=(True,),
                   machine=guarded, stdin=(0x41414141, 0x42424242, target))
    except StackSmashingDetected as abort:
        print("naive smash:", abort)
    guarded2 = Machine(MachineConfig(canary_policy=CanaryPolicy.RANDOM))
    target2 = guarded2.text.function_named("system").address
    _, outcome = run_source(LISTING_13.source, entry="addStudent", args=(True,),
                            machine=guarded2, stdin=(-1, -1, target2))
    print("selective overwrite: canary intact =", outcome.frame_exit.canary_intact,
          "| shell spawned =", guarded2.shell_spawned)

    banner("Listing 21 — information leak, executed")
    machine = Machine()
    machine.files.add(password_file())
    interp, _ = run_source(LISTING_21.source, machine=machine)
    _, stored = interp.stored[0]
    print("store(userdata) shipped", len(stored), "bytes; preview:")
    print(" ", stored[:64].decode("latin-1", errors="replace"))

    banner("Listing 23 — memory leak, executed")
    interp, _ = run_source(LISTING_23.source, entry="addStudents", args=(50,))
    print("iterations: 25 (i += 2); leaked:",
          interp.machine.tracker.leaked_bytes, "bytes (16 per iteration)")


if __name__ == "__main__":
    main()

"""Tests for strict-alignment faults (§2.5) and multiple-inheritance
vptr subterfuge (§3.8.2's "more than one vtable pointers")."""

import pytest

from repro.core import construct, placement_new
from repro.cxx import INT, UINT, VirtualMethod, make_class
from repro.errors import BusError
from repro.memory import SegmentKind
from repro.runtime import Machine, MachineConfig
from repro.workloads import make_student_classes


class TestStrictAlignment:
    @pytest.fixture
    def strict(self):
        return Machine(MachineConfig(strict_alignment=True))

    def test_aligned_access_fine(self, strict):
        base = strict.space.segment(SegmentKind.BSS).base
        strict.space.write_double(base, 1.5)
        assert strict.space.read_double(base) == 1.5

    def test_misaligned_double_faults(self, strict):
        base = strict.space.segment(SegmentKind.BSS).base
        with pytest.raises(BusError):
            strict.space.write_double(base + 4, 1.5)
        with pytest.raises(BusError):
            strict.space.read_double(base + 4)

    def test_misaligned_int_faults(self, strict):
        base = strict.space.segment(SegmentKind.BSS).base
        with pytest.raises(BusError):
            strict.space.read_int(base + 2)

    def test_char_access_never_faults(self, strict):
        base = strict.space.segment(SegmentKind.BSS).base
        strict.space.write_int(base + 3, 0x41, width=1)
        assert strict.space.read_int(base + 3, width=1) == 0x41

    def test_default_machine_is_permissive(self, machine):
        # The paper's x86 testbed tolerates misalignment.
        base = machine.space.segment(SegmentKind.BSS).base
        machine.space.write_double(base + 4, 2.5)
        assert machine.space.read_double(base + 4) == 2.5

    def test_misaligned_placement_terminates_on_strict_target(self, strict):
        """§2.5 item 4: no alignment check at placement → the program
        dies later, at the first real member access."""
        student_cls, _ = make_student_classes()
        base = strict.space.segment(SegmentKind.BSS).base + 4  # 4-misaligned
        with pytest.raises(BusError):
            # The constructor writes gpa (8-aligned) at base+0.
            placement_new(strict, base, student_cls, 3.0, 2010, 1)


def _make_mi_classes():
    """Two polymorphic bases → the derived object holds two vptrs."""
    info_a = VirtualMethod("describe", lambda m, i: "A")
    info_b = VirtualMethod("identify", lambda m, i: "B")
    base_a = make_class("PolyA", fields=[("a", INT)], virtuals=[info_a])
    base_b = make_class("PolyB", fields=[("b", INT)], virtuals=[info_b])
    derived = make_class("Both", bases=[base_a, base_b], fields=[("c", INT)])
    return base_a, base_b, derived


class TestMultipleInheritanceVptrs:
    def test_two_vptrs_in_layout(self, machine):
        _, _, derived = _make_mi_classes()
        layout = machine.layouts.layout_of(derived)
        assert len(layout.vptr_offsets) == 2

    def test_construction_installs_both(self, machine):
        base_a, base_b, derived = _make_mi_classes()
        inst = machine.static_object(derived, "obj")
        construct(machine, derived, inst.address)
        layout = inst.layout
        for offset in layout.vptr_offsets:
            vptr = machine.space.read_pointer(inst.address + offset)
            assert machine.text.vtable_at(vptr) is not None

    def test_overflow_reaches_second_vptr(self, machine):
        """The §3.8.2 remark made concrete: an overflow running through
        a multiple-inheritance object meets a *second* vptr after the
        first base subobject — another control word at a fixed offset."""
        base_a, base_b, derived = _make_mi_classes()
        inst = machine.static_object(derived, "victim")
        construct(machine, derived, inst.address)
        layout = inst.layout
        second_vptr_offset = layout.vptr_offsets[1]
        # Simulate an overflow from the first subobject writing a fake
        # vtable pointer into the second vptr slot.
        fake_table = machine.static_array(UINT, 2, "fake")
        target = machine.text.function_named("grantAdminAccess").address
        machine.space.write_pointer(fake_table.address, target)
        machine.space.write_pointer(
            inst.address + second_vptr_offset, fake_table.address
        )
        # Dispatch through the second base: reads the corrupted vptr.
        base_view = machine.instance(base_b, inst.address + layout.base_offset("PolyB"))
        result = machine.virtual_call(base_view, "identify")
        assert result.function_name == "grantAdminAccess"
        assert result.privileged

"""Tests for the differential fuzzer's two oracles and coverage map."""

from repro.fuzz import (
    CoverageMap,
    OracleConfig,
    coverage_keys,
    run_oracles,
    static_verdict,
)
from repro.fuzz.oracles import dynamic_verdict
from repro.memory import MemoryEventTap
from repro.runtime import Machine
from repro.workloads.generators import generate_program
import random


LEAK_VULNERABLE = """\
char pool[128];
void run() {
  readFile("/etc/passwd", pool, 128);
  char* userdata = new (pool) char[128];
  store(userdata);
}
"""

LEAK_SAFE = LEAK_VULNERABLE.replace(
    'readFile("/etc/passwd", pool, 128);',
    'readFile("/etc/passwd", pool, 128);\n  memset(pool, 0, 128);',
)

PARTIAL_MEMSET = LEAK_VULNERABLE.replace(
    'readFile("/etc/passwd", pool, 128);',
    'readFile("/etc/passwd", pool, 128);\n  memset(pool, 0, 64);',
)

CONSTANT_FILL = """\
char pool[64];
void run() {
  memset(pool, 64, 64);
  char* userdata = new (pool) char[64];
  store(userdata);
}
"""

TYPE_CONFUSION = """\
class Student {
  public:
    Student();
};
class GradStudent : public Student {
  public:
    GradStudent();
    int ssn[3];
};
void run() {
  Student stud;
  GradStudent* gs = new (&stud) Student();
  cin >> gs->ssn[0] >> gs->ssn[1] >> gs->ssn[2];
}
"""


class TestStaticOracle:
    def test_leak_program_flagged(self):
        verdict = static_verdict(LEAK_VULNERABLE)
        assert verdict.vulnerable
        assert "PN-NO-SANITIZE" in verdict.rules

    def test_sanitized_leak_program_clean(self):
        verdict = static_verdict(LEAK_SAFE)
        assert not verdict.vulnerable

    def test_partial_memset_still_flagged(self):
        # A memset that covers only half the arena leaves residue; the
        # detector must not treat it as a full sanitize.
        verdict = static_verdict(PARTIAL_MEMSET)
        assert "PN-NO-SANITIZE" in verdict.rules

    def test_type_confusion_binding_flagged(self):
        # The placement itself fits (Student into Student), but binding
        # it to a GradStudent* re-opens the overflow.
        verdict = static_verdict(TYPE_CONFUSION)
        assert "PN-TYPE-CONFUSION" in verdict.error_rules

    def test_unparsable_source_is_none(self):
        assert static_verdict("class {{{") is None


class TestDynamicOracle:
    def test_leak_program_leaks_at_runtime(self):
        entry, verdict = dynamic_verdict(LEAK_VULNERABLE)
        assert entry == "run"
        assert verdict.valid
        assert "leak-detected" in verdict.events
        assert verdict.vulnerable

    def test_sanitized_leak_program_clean_at_runtime(self):
        _, verdict = dynamic_verdict(LEAK_SAFE)
        assert verdict.valid and not verdict.vulnerable

    def test_constant_fill_is_not_a_leak(self):
        # memset(pool, 64, 64) stores nonzero but attacker-constant
        # bytes; only recognizable secret-file content counts as a leak.
        _, verdict = dynamic_verdict(CONSTANT_FILL)
        assert "leak-detected" not in verdict.events

    def test_type_confusion_trips_canary(self):
        _, verdict = dynamic_verdict(TYPE_CONFUSION, stdin=(7, 7, 7))
        assert verdict.vulnerable
        assert verdict.fault == "StackSmashingDetected"

    def test_dos_loop_times_out(self):
        program = generate_program(
            random.Random(3), vulnerable=True, shape="dos-loop"
        )
        _, verdict = dynamic_verdict(program.source, stdin=program.stdin)
        assert "dos-timeout" in verdict.events

    def test_missing_entry_is_invalid(self):
        _, verdict = dynamic_verdict("class Only { public: int x; };")
        assert not verdict.valid
        assert "no runnable entry" in verdict.reason

    def test_stdin_exhaustion_is_invalid_not_divergent(self):
        source = "void run() { int x = 0; cin >> x; }"
        _, verdict = dynamic_verdict(source, config=OracleConfig(stdin=()))
        assert not verdict.valid

    def test_entry_plan_prefers_run_then_main(self):
        source = "void main() { }\nvoid run() { }"
        entry, verdict = dynamic_verdict(source)
        assert entry == "run" and verdict.valid

    def test_entry_plan_synthesizes_scalar_args(self):
        source = "int doubled(int x) { return x + x; }"
        entry, verdict = dynamic_verdict(source)
        assert entry == "doubled" and verdict.valid


class TestObservationAndCoverage:
    def test_agreeing_oracles_no_divergence(self):
        for source in (LEAK_VULNERABLE, LEAK_SAFE):
            observation = run_oracles(source)
            assert observation.divergence_kind is None

    def test_static_only_divergence(self):
        source = """\
char pool[64];
void run() {
  int n = 0;
  cin >> n;
  char* p = new (pool) char[n];
}
"""
        observation = run_oracles(source, stdin=(8,))
        assert observation.divergence_kind == "static-only"

    def test_coverage_keys_mix_rules_and_events(self):
        observation = run_oracles(LEAK_VULNERABLE)
        keys = coverage_keys(observation)
        assert any(key.startswith("rule:") for key in keys)
        assert "event:leak-detected" in keys

    def test_coverage_map_grow_only(self):
        cov = CoverageMap()
        fresh = cov.observe(("rule:A", "event:b"))
        assert set(fresh) == {"rule:A", "event:b"}
        assert cov.observe(("rule:A",)) == ()
        assert len(cov) == 2 and "rule:A" in cov

    def test_coverage_map_snapshot_restores(self):
        cov = CoverageMap(("rule:A",))
        assert cov.observe(("rule:A", "rule:B")) == ("rule:B",)


class TestMemoryEventTap:
    def test_legit_vptr_install_not_reported(self):
        source = """\
class Acct {
  public:
    virtual int balance() { return 1; }
};
void run() {
  Acct a;
  Acct* p = new (&a) Acct();
}
"""
        _, verdict = dynamic_verdict(source)
        assert "vtable-slot-overwritten" not in verdict.events

    def test_vptr_tamper_reported(self):
        source = """\
class Acct {
  public:
    virtual int balance() { return 1; }
};
void run() {
  Acct a;
  Acct* p = new (&a) Acct();
  char* c = &a;
  cin >> c[0];
}
"""
        _, verdict = dynamic_verdict(source, stdin=(65,))
        assert "vtable-slot-overwritten" in verdict.events

    def test_tap_records_segment_writes(self):
        machine = Machine()
        tap = MemoryEventTap(machine.space)
        machine.space.add_access_hook(tap)
        from repro.cxx.types import INT

        frame = machine.push_frame("f")
        local = frame.local_scalar(INT, "x")
        machine.space.write(local, b"\x01")
        assert "write:stack" in tap.kinds

"""Defense descriptors and the attack × defense evaluation harness.

Section 5 of the paper surveys protections for modifiable and legacy
software.  Each :class:`Defense` names an :class:`Environment` (the
mechanical hardening) plus the paper's claims about it; the harness runs
the full attack gallery against every defense and renders the E14
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..attacks.base import (
    CHECKED_PLACEMENT,
    NX_STACK,
    SANITIZE,
    SHADOW_MEMORY,
    SHADOW_RETURN_STACK,
    STACKGUARD,
    UNPROTECTED,
    VTABLE_INTEGRITY,
    AttackResult,
    AttackScenario,
    Environment,
)


@dataclass(frozen=True)
class Defense:
    """One protection technique under evaluation."""

    name: str
    environment: Environment
    paper_ref: str = ""
    deployment: str = "modifiable"  # "modifiable" | "legacy" | "none"
    notes: str = ""


BASELINE = Defense(
    name="none",
    environment=UNPROTECTED,
    paper_ref="§1 (the paper's testbed)",
    deployment="none",
    notes="unprotected gcc 4.4.3-style build",
)

STACKGUARD_DEFENSE = Defense(
    name="stackguard",
    environment=STACKGUARD,
    paper_ref="§5.2 [8]",
    deployment="legacy",
    notes="random canary checked in the epilogue; selective overwrites evade it",
)

CORRECT_CODING = Defense(
    name="checked-placement",
    environment=CHECKED_PLACEMENT,
    paper_ref="§5.1",
    deployment="modifiable",
    notes="sizeof()-based bounds check at every placement site",
)

SHADOW_DEFENSE = Defense(
    name="shadow-memory",
    environment=SHADOW_MEMORY,
    paper_ref="§5.2 (runtime prevention schemes)",
    deployment="legacy",
    notes="red zones around victim arenas; catches stray writes",
)

NX_DEFENSE = Defense(
    name="nx-stack",
    environment=NX_STACK,
    paper_ref="§5.2 (non-executable stacks)",
    deployment="legacy",
    notes="stops code injection only; arc injection unaffected",
)

SANITIZE_DEFENSE = Defense(
    name="sanitize-on-reuse",
    environment=SANITIZE,
    paper_ref="§5.1 (information leaks)",
    deployment="modifiable",
    notes="memset before arena reuse; stops information leakage",
)

SHADOW_STACK_DEFENSE = Defense(
    name="shadow-ret-stack",
    environment=SHADOW_RETURN_STACK,
    paper_ref="§5.2 [27][20] (return address stack)",
    deployment="legacy",
    notes="protected copy of every return address; selective overwrites lose",
)

VTABLE_INTEGRITY_DEFENSE = Defense(
    name="vtable-integrity",
    environment=VTABLE_INTEGRITY,
    paper_ref="§3.8.2 countermeasure (forward-edge CFI)",
    deployment="legacy",
    notes="every virtual dispatch validates the vptr against emitted vtables",
)

ALL_DEFENSES: tuple[Defense, ...] = (
    BASELINE,
    STACKGUARD_DEFENSE,
    CORRECT_CODING,
    SHADOW_DEFENSE,
    NX_DEFENSE,
    SANITIZE_DEFENSE,
    SHADOW_STACK_DEFENSE,
    VTABLE_INTEGRITY_DEFENSE,
)


def defense_by_name(name: str) -> Defense:
    """Look a defense up by its ``name`` attribute."""
    for defense in ALL_DEFENSES:
        if defense.name == name:
            return defense
    choices = ", ".join(defense.name for defense in ALL_DEFENSES)
    raise KeyError(f"no defense named '{name}' (choose from: {choices})")


@dataclass
class MatrixCell:
    """One (attack, defense) outcome."""

    attack: str
    defense: str
    result: AttackResult

    @property
    def summary(self) -> str:
        """Compact cell text for the rendered table."""
        if self.result.succeeded:
            return "ATTACK-WINS"
        if self.result.detected_by:
            return f"detected({self.result.detected_by})"
        if self.result.crashed:
            return "crashed"
        return "prevented"


@dataclass
class EvaluationMatrix:
    """The E14 attack × defense matrix."""

    defenses: Sequence[Defense]
    cells: list[MatrixCell] = field(default_factory=list)

    def cell(self, attack_name: str, defense_name: str) -> Optional[MatrixCell]:
        """Look one outcome up."""
        for cell in self.cells:
            if cell.attack == attack_name and cell.defense == defense_name:
                return cell
        return None

    def attack_names(self) -> list[str]:
        """Row labels, in insertion order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.attack not in seen:
                seen.append(cell.attack)
        return seen

    def wins_for_defense(self, defense_name: str) -> int:
        """How many attacks still succeed under a defense."""
        return sum(
            1
            for cell in self.cells
            if cell.defense == defense_name and cell.result.succeeded
        )

    def render(self, column_width: int = 22) -> str:
        """A fixed-width table suitable for harness output."""
        header = f"{'attack':40s}" + "".join(
            f"{d.name:>{column_width}s}" for d in self.defenses
        )
        lines = [header, "-" * len(header)]
        for attack_name in self.attack_names():
            row = f"{attack_name:40s}"
            for defense in self.defenses:
                cell = self.cell(attack_name, defense.name)
                row += f"{cell.summary if cell else '?':>{column_width}s}"
            lines.append(row)
        totals = f"{'attacks succeeding':40s}" + "".join(
            f"{self.wins_for_defense(d.name):>{column_width}d}" for d in self.defenses
        )
        lines.append("-" * len(header))
        lines.append(totals)
        return "\n".join(lines)


def evaluate_matrix(
    scenarios: Iterable[AttackScenario],
    defenses: Sequence[Defense] = ALL_DEFENSES,
) -> EvaluationMatrix:
    """Run every scenario under every defense."""
    matrix = EvaluationMatrix(defenses=tuple(defenses))
    for scenario in scenarios:
        for defense in defenses:
            result = scenario.run(defense.environment)
            matrix.cells.append(
                MatrixCell(attack=scenario.name, defense=defense.name, result=result)
            )
    return matrix

// package: pkg-22-tainted-array
// imports: pkg-13-guarded
char pool[64];
void run() {
  char *buf = new (pool) char[20];
}

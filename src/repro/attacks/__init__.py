"""Every attack from the paper's Sections 3–4, as runnable scenarios.

``ALL_ATTACKS`` is the canonical gallery used by the E14 attack × defense
matrix and the CLI; ``attack_by_name`` looks scenarios up for ad-hoc
runs.  Each scenario is independent: it builds its own victim machine,
scripts the attacker, and reports an :class:`AttackResult`.
"""

from typing import Callable

from .array_overflow import BssArrayOverflowAttack, StackArrayOverflowAttack
from .base import (
    ALL_ENVIRONMENTS,
    CHECKED_PLACEMENT,
    NX_STACK,
    SANITIZE,
    SHADOW_MEMORY,
    SHADOW_RETURN_STACK,
    STACKGUARD,
    UNPROTECTED,
    VTABLE_INTEGRITY,
    AttackResult,
    AttackScenario,
    Environment,
    classify_failure,
    environment_by_label,
    environment_with,
)
from .data_bss import DataBssOverflowAttack
from .dos import AuthBypassAttack, DosLoopAttack, ResourceExhaustionAttack
from .heap import HeapOverflowAttack
from .info_leak import ArrayInfoLeakAttack, ObjectInfoLeakAttack
from .injection import ArcInjectionAttack, CodeInjectionAttack
from .member_vars import InternalOverflowAttack, MemberVariableAttack
from .memory_leak import MemoryLeakAttack, TrackedLeakMeasurement
from .object_overflow import (
    ConstructionOverflowAttack,
    CopyConstructorOverflowAttack,
    IndirectConstructionOverflowAttack,
    RemoteObjectOverflowAttack,
)
from .pointers import FunctionPointerAttack, VariablePointerAttack
from .stack_smash import (
    CanarySkipExperiment,
    ReturnAddressAttack,
    naive_smash,
    selective_overwrite,
)
from .variables import DataVariableAttack, StackLocalVariableAttack
from .vtable_subterfuge import (
    VtableSubterfugeDataAttack,
    VtableSubterfugeStackAttack,
)

#: Factories for the full gallery (fresh scenario per call so parameters
#: and any accumulated state never leak between runs).
ATTACK_FACTORIES: tuple[Callable[[], AttackScenario], ...] = (
    ConstructionOverflowAttack,
    RemoteObjectOverflowAttack,
    CopyConstructorOverflowAttack,
    IndirectConstructionOverflowAttack,
    InternalOverflowAttack,
    DataBssOverflowAttack,
    HeapOverflowAttack,
    ReturnAddressAttack,
    ArcInjectionAttack,
    CodeInjectionAttack,
    DataVariableAttack,
    StackLocalVariableAttack,
    MemberVariableAttack,
    VtableSubterfugeDataAttack,
    VtableSubterfugeStackAttack,
    FunctionPointerAttack,
    VariablePointerAttack,
    StackArrayOverflowAttack,
    BssArrayOverflowAttack,
    ArrayInfoLeakAttack,
    ObjectInfoLeakAttack,
    DosLoopAttack,
    AuthBypassAttack,
    ResourceExhaustionAttack,
    MemoryLeakAttack,
    TrackedLeakMeasurement,
)


def all_attacks() -> list[AttackScenario]:
    """Fresh instances of the full gallery."""
    return [factory() for factory in ATTACK_FACTORIES]


def attack_by_name(name: str) -> AttackScenario:
    """Look a scenario up by its ``name`` attribute."""
    for scenario in all_attacks():
        if scenario.name == name:
            return scenario
    raise KeyError(f"no attack named '{name}'")


__all__ = [
    "ALL_ENVIRONMENTS",
    "ATTACK_FACTORIES",
    "ArcInjectionAttack",
    "ArrayInfoLeakAttack",
    "AttackResult",
    "AttackScenario",
    "AuthBypassAttack",
    "BssArrayOverflowAttack",
    "CHECKED_PLACEMENT",
    "CanarySkipExperiment",
    "CodeInjectionAttack",
    "ConstructionOverflowAttack",
    "CopyConstructorOverflowAttack",
    "DataBssOverflowAttack",
    "DataVariableAttack",
    "DosLoopAttack",
    "Environment",
    "FunctionPointerAttack",
    "HeapOverflowAttack",
    "IndirectConstructionOverflowAttack",
    "InternalOverflowAttack",
    "MemberVariableAttack",
    "MemoryLeakAttack",
    "NX_STACK",
    "ObjectInfoLeakAttack",
    "RemoteObjectOverflowAttack",
    "ResourceExhaustionAttack",
    "ReturnAddressAttack",
    "SANITIZE",
    "SHADOW_MEMORY",
    "SHADOW_RETURN_STACK",
    "STACKGUARD",
    "VTABLE_INTEGRITY",
    "StackArrayOverflowAttack",
    "StackLocalVariableAttack",
    "TrackedLeakMeasurement",
    "UNPROTECTED",
    "VariablePointerAttack",
    "VtableSubterfugeDataAttack",
    "VtableSubterfugeStackAttack",
    "all_attacks",
    "attack_by_name",
    "classify_failure",
    "environment_by_label",
    "environment_with",
    "naive_smash",
    "selective_overwrite",
]

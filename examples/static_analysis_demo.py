#!/usr/bin/env python
"""The detector the paper promised as future work, applied to real source.

Parses the paper's Listing 13 (stack overflow via placement new) and
Listing 23 (memory leak), runs the placement-new detector and a classic
ITS4-style scanner on both, and shows why the classics stay silent.

Run:  python examples/static_analysis_demo.py [file.cpp ...]
      (with file arguments, analyzes your own MiniC++ sources instead)
"""

import sys

from repro.analysis import analyze_source, simulated_tool_suite
from repro.workloads.corpus import LISTING_13, LISTING_23


def analyze_and_print(title: str, source: str) -> None:
    print(f"──── {title} " + "─" * max(0, 60 - len(title)))
    for number, line in enumerate(source.strip().splitlines(), start=1):
        print(f"{number:3d} | {line}")
    print()
    report = analyze_source(source)
    print(report.render())
    print()
    for tool in simulated_tool_suite():
        print(tool.scan_source(source).render())
    print()


def main() -> None:
    if len(sys.argv) > 1:
        for path in sys.argv[1:]:
            with open(path) as handle:
                analyze_and_print(path, handle.read())
        return
    analyze_and_print("Listing 13 — stack overflow via placement new", LISTING_13.source)
    analyze_and_print("Listing 23 — placement-new memory leak", LISTING_23.source)
    print(
        "Note the asymmetry: the classic scanners key on unsafe string\n"
        "APIs and have no rule for `new`, so every placement-new finding\n"
        "above comes from the flow-sensitive detector alone — the paper's\n"
        "Section 1 claim, reproduced."
    )


if __name__ == "__main__":
    main()

"""repro.regress: the replayable regression corpus.

Turns one-off fuzz findings into durable correctness claims: every
minimized oracle disagreement (and any deliberately pinned agreement)
is stored as a content-addressed, version-aware JSON bundle that the
``repro-regress`` CLI — and the service engine's ``regress-replay``
job — can re-judge against the live detector and simulator on every
PR.  Verdict drift, triage drift, and version bumps without an explicit
rebaseline all fail the replay.  See docs/REGRESSION.md.
"""

from .replay import (
    REPLAY_SCHEMA,
    DriftReport,
    ReplayResult,
    rebaseline_store,
    replay_bundle,
    replay_bundle_json,
    replay_store,
)
from .store import (
    BUNDLE_KINDS,
    BUNDLE_SCHEMA,
    RegressionBundle,
    RegressionStore,
    bundle_from_divergence,
    bundle_from_observation,
    current_versions,
    triage_label,
)

__all__ = [
    "BUNDLE_KINDS",
    "BUNDLE_SCHEMA",
    "DriftReport",
    "REPLAY_SCHEMA",
    "RegressionBundle",
    "RegressionStore",
    "ReplayResult",
    "bundle_from_divergence",
    "bundle_from_observation",
    "current_versions",
    "rebaseline_store",
    "replay_bundle",
    "replay_bundle_json",
    "replay_store",
    "triage_label",
]

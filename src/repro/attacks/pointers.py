"""Function- and variable-pointer subterfuge — Sections 3.9–3.10.

Listing 17's function pointer is initialized to NULL and guarded by an
``if``: the routine "would not be invoked if it were assigned a null
value", so the overflow does double duty — it supplies a target *and*
enables a call that was never supposed to happen.  Listing 18's variable
pointer (``char *name``) is redirected so later uses of ``name`` read or
write attacker-chosen memory or crash.
"""

from __future__ import annotations

from ..core.new_expr import new_array
from ..cxx.types import CHAR, CHAR_PTR, FUNC_PTR
from ..errors import SegmentationFault
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment


class FunctionPointerAttack(AttackScenario):
    """Listing 17: NULL-guarded fn pointer rewritten and thereby invoked."""

    name = "function-pointer-subterfuge"
    paper_ref = "§3.9, Listing 17"
    description = "overflow rewrites a NULL fn pointer; guarded call fires"

    def __init__(self, target_symbol: str = "grantAdminAccess") -> None:
        self.target_symbol = target_symbol

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        target = machine.text.function_named(self.target_symbol).address

        frame = machine.push_frame("addStudent")
        # bool (*createStudentAccount)(char *uid) = NULL;
        fn_ptr_address = frame.local_scalar(FUNC_PTR, "createStudentAccount", init=0)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        # Control: with NULL the guard blocks the call.
        called_before = machine.space.read_pointer(fn_ptr_address) != 0

        gs = env.place(machine, stud, grad_cls)
        # Which ssn word lands on the pointer depends on the padding
        # between stud's end and the 4-byte local above it; compute it
        # the way the attacker would from the binary.
        for index in range(3):
            if gs.element_address("ssn", index) == fn_ptr_address:
                gs.set_element("ssn", index, target)
                break
        else:
            machine.pop_frame(frame)
            return self.result(
                env, succeeded=False, machine=machine, reason="pointer not reachable"
            )

        pointer_value = machine.space.read_pointer(fn_ptr_address)
        invoked = None
        if pointer_value != 0:  # the victim's NULL guard
            invoked = machine.call_function_pointer(pointer_value)
        machine.pop_frame(frame)
        return self.result(
            env,
            succeeded=(
                invoked is not None and invoked.function_name == self.target_symbol
            ),
            machine=machine,
            guard_blocked_before=not called_before,
            pointer_value=hex(pointer_value),
            invoked=invoked.function_name if invoked else None,
        )


class VariablePointerAttack(AttackScenario):
    """Listing 18: ``char *name`` redirected by the overflow."""

    name = "variable-pointer-subterfuge"
    paper_ref = "§3.10, Listing 18"
    description = "global char* redirected to attacker-chosen address"

    def __init__(self, redirect_to_secret: bool = True) -> None:
        self.redirect_to_secret = redirect_to_secret

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        # Globals, in declaration order: Student stud; char *name;
        stud = machine.static_object(student_cls, "stud")
        name_var = machine.static_scalar(CHAR_PTR, "name")
        env.protect(machine, stud.address, stud.size)

        heap_name = new_array(machine, CHAR, 16)
        machine.space.strncpy(heap_name.address, "abcdefghijklmno", 16)
        machine.space.write_pointer(name_var.address, heap_name.address)

        # A "secret" the attacker wants the program to print instead.
        secret = new_array(machine, CHAR, 16)
        machine.space.strncpy(secret.address, "TOPSECRETTOKEN", 16)

        injected = secret.address if self.redirect_to_secret else 0x00000004
        st = env.place(machine, stud, grad_cls)
        st.set_element("ssn", 0, injected)  # overwrites ptr name

        pointer_after = machine.space.read_pointer(name_var.address)
        try:
            read_back = machine.space.read_c_string(pointer_after)
            crashed = False
        except SegmentationFault:
            read_back = None
            crashed = True
        redirected = pointer_after == injected
        succeeded = redirected and (
            (self.redirect_to_secret and read_back == "TOPSECRETTOKEN")
            or (not self.redirect_to_secret and crashed)
        )
        return self.result(
            env,
            succeeded=succeeded,
            machine=machine,
            pointer_after=hex(pointer_after),
            dereference=read_back if not crashed else "SIGSEGV",
        )

"""Campaign orchestration: the coverage-guided differential fuzz loop.

:class:`DifferentialFuzzer` is the single-threaded core — seed, pick,
mutate, run both oracles, promote on new coverage, dedup divergences.
:func:`run_batch` is the same loop packaged as a service-worker payload
(one *batch* of iterations against a corpus/coverage snapshot), and
:func:`run_campaign` drives whole campaigns either sequentially or as
rounds of :class:`~repro.service.jobs.FuzzCampaignJob` batches fanned
out over a :class:`~repro.service.ServiceEngine` worker pool, with
per-batch timeouts and deterministic in-order merging — the report is
byte-identical across runs for a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from .coverage import CoverageMap, coverage_keys
from .divergence import (
    Divergence,
    auto_triage,
    divergence_from,
    fingerprint_of,
    normalized_events,
)
from .minimize import minimize_input
from .mutator import mutate
from .oracles import DEFAULT_STEP_BUDGET, OracleConfig, run_oracles
from .report import CampaignReport
from .seeds import FuzzInput, seed_inputs


@dataclass(frozen=True)
class FuzzConfig:
    """Deterministic knobs for one campaign."""

    seed: int = 1
    iterations: int = 200
    step_budget: int = DEFAULT_STEP_BUDGET
    canary: bool = True
    minimize: bool = True
    max_corpus: int = 256

    def oracle_config(self) -> OracleConfig:
        return OracleConfig(step_budget=self.step_budget, canary=self.canary)


class DifferentialFuzzer:
    """The sequential fuzzing core; every data structure is
    deterministic for a fixed seed and iteration count."""

    def __init__(self, config: FuzzConfig, metrics=None, store=None) -> None:
        self.config = config
        self.metrics = metrics
        #: Optional :class:`repro.regress.RegressionStore`; when set,
        #: :meth:`finalize` records every (minimized) divergence so the
        #: disagreement survives the campaign as a replayable bundle.
        self.store = store
        self.coverage = CoverageMap()
        self.corpus: list = []
        self.promoted: list = []  # inputs promoted *this* session
        self.divergences: dict = {}  # fingerprint → Divergence
        self.families: dict = {}  # family → {"static","dynamic"} reach
        self.execs = 0
        self.invalid = 0
        self.discarded = 0
        self.seeds = 0
        self.batches_failed = 0
        self.iterations_lost = 0
        self.saturations = 0
        self._seen: set = set()  # every key ever evaluated or enrolled
        self._corpus_keys: set = set()  # keys currently in the corpus
        self._protected = 0  # leading corpus entries exempt from eviction
        self._oracle_config = config.oracle_config()

    # -- corpus ------------------------------------------------------------

    def add_corpus(self, fuzz_input: FuzzInput, protected: bool = False) -> bool:
        """Add an input as mutation material (dedup by content).

        Corpus membership is tracked separately from the evaluated set:
        a mutant whose key is already in ``_seen`` (it was just
        executed) can still be promoted.  When the corpus is saturated,
        the oldest non-protected entry is evicted deterministically so
        the campaign keeps learning — seeds (``protected=True``) are
        never evicted, and the dropped candidate's key still enters
        ``_seen`` so it is not re-evaluated later.
        """
        key = fuzz_input.key()
        if key in self._corpus_keys:
            return False
        self._seen.add(key)
        if len(self.corpus) >= self.config.max_corpus:
            self.saturations += 1
            if self.metrics is not None:
                self.metrics.counter("fuzz.corpus_saturated").inc()
            if self._protected >= len(self.corpus):
                return False  # nothing evictable: the cap is all seeds
            evicted = self.corpus.pop(self._protected)
            self._corpus_keys.discard(evicted.key())
        self._corpus_keys.add(key)
        self.corpus.append(fuzz_input)
        if protected:
            self._protected += 1
        return True

    # -- the loop ----------------------------------------------------------

    def observe(self, fuzz_input: FuzzInput, promote: bool = True):
        """Run both oracles over one input and fold in the outcome."""
        observation = run_oracles(
            fuzz_input.source, fuzz_input.stdin, self._oracle_config
        )
        self.execs += 1
        if self.metrics is not None:
            self.metrics.counter("fuzz.execs_total").inc()
        if fuzz_input.label == "vulnerable":
            reach = self.families.setdefault(
                fuzz_input.family, {"static": False, "dynamic": False}
            )
            reach["static"] = reach["static"] or observation.static.vulnerable
            reach["dynamic"] = reach["dynamic"] or (
                observation.valid and observation.dynamic.vulnerable
            )
        if not observation.valid:
            self.invalid += 1
            return observation
        fresh = self.coverage.observe(coverage_keys(observation))
        if fresh and promote and self.add_corpus(fuzz_input):
            self.promoted.append(fuzz_input)
        div = divergence_from(observation, fuzz_input)
        if div is not None:
            known = self.divergences.get(div.fingerprint)
            if known is None:
                self.divergences[div.fingerprint] = div
                if self.metrics is not None:
                    self.metrics.counter("fuzz.divergences_total").inc()
            else:
                known.occurrences += 1
        return observation

    def run_seeds(self) -> None:
        """Evaluate and enroll the deterministic seed set."""
        for fuzz_input in seed_inputs(self.config.seed):
            self.add_corpus(fuzz_input, protected=True)
            self.observe(fuzz_input, promote=False)
            self.seeds += 1

    def fuzz(self, rng: random.Random, iterations: int) -> None:
        """``iterations`` mutate-and-observe steps over the live corpus."""
        for _ in range(iterations):
            parent = self.corpus[rng.randrange(len(self.corpus))]
            mutant = mutate(rng, parent)
            if mutant is None or mutant.key() in self._seen:
                self.discarded += 1
                continue
            self._seen.add(mutant.key())
            self.observe(mutant)

    # -- wrap-up -----------------------------------------------------------

    def _same_divergence(self, div):
        """Predicate used by the minimizer: same fingerprint survives."""

        def predicate(candidate: FuzzInput) -> bool:
            observation = run_oracles(
                candidate.source, candidate.stdin, self._oracle_config
            )
            kind = observation.divergence_kind
            if kind != div.kind:
                return False
            return (
                fingerprint_of(
                    kind,
                    observation.static.rules,
                    normalized_events(observation.dynamic.events),
                )
                == div.fingerprint
            )

        return predicate

    def finalize(self) -> CampaignReport:
        """Minimize, auto-triage, and assemble the campaign report."""
        finished = []
        for fingerprint in sorted(self.divergences):
            div = self.divergences[fingerprint]
            if self.config.minimize:
                smallest = minimize_input(
                    FuzzInput(source=div.source, stdin=div.stdin),
                    self._same_divergence(div),
                )
                div = replace(
                    div,
                    minimized_source=smallest.source,
                    minimized_stdin=smallest.stdin,
                )
            finished.append(auto_triage(div))
        if self.store is not None:
            for div in finished:
                self.store.record_divergence(
                    div,
                    self._oracle_config,
                    meta={"seed": self.config.seed, "recorded_by": "fuzz-campaign"},
                )
        if self.metrics is not None:
            self.metrics.gauge("fuzz.coverage_size").set(len(self.coverage))
            self.metrics.gauge("fuzz.corpus_size").set(len(self.corpus))
        report = CampaignReport(
            seed=self.config.seed,
            iterations=self.config.iterations,
            execs=self.execs,
            invalid=self.invalid,
            seeds=self.seeds,
            mutants_discarded=self.discarded,
            corpus_size=len(self.corpus),
            coverage=self.coverage.sorted_keys(),
            families=self.families,
        )
        report.divergences = finished
        report.batches_failed = self.batches_failed
        report.iterations_lost = self.iterations_lost
        report.corpus_saturated = self.saturations
        return report


# -- the service-worker batch ------------------------------------------------


def batch_rng(seed: int, round_index: int, batch_index: int) -> random.Random:
    """The deterministic RNG for one batch of one campaign."""
    return random.Random(f"fuzz/{seed}/round{round_index}/batch{batch_index}")


def run_batch(payload: dict) -> dict:
    """Worker entry: one batch of iterations against a snapshot.

    The payload carries the campaign seed, the round/batch coordinates,
    the corpus and coverage snapshots, and the oracle knobs; the result
    carries only the *deltas* (new coverage keys, promoted inputs,
    divergences) so the driver can merge batches in submission order.
    """
    config = FuzzConfig(
        seed=payload["seed"],
        iterations=payload["iterations"],
        step_budget=payload.get("step_budget", DEFAULT_STEP_BUDGET),
        canary=payload.get("canary", True),
        max_corpus=payload.get("max_corpus", 256),
    )
    fuzzer = DifferentialFuzzer(config)
    baseline = frozenset(payload.get("coverage", ()))
    fuzzer.coverage = CoverageMap(baseline)
    protected = payload.get("protected", 0)
    for index, entry in enumerate(payload.get("corpus", ())):
        source, stdin, family, label = entry
        fuzzer.add_corpus(
            FuzzInput(
                source=source, stdin=tuple(stdin), family=family, label=label
            ),
            # The driver's seed prefix stays immortal inside the batch
            # too; driver-promoted entries may be evicted locally when
            # the batch saturates, exactly as they may be in the driver.
            protected=index < protected,
        )
    rng = batch_rng(payload["seed"], payload["round"], payload["batch"])
    fuzzer.fuzz(rng, payload["iterations"])
    return {
        "execs": fuzzer.execs,
        "invalid": fuzzer.invalid,
        "discarded": fuzzer.discarded,
        "saturations": fuzzer.saturations,
        "new_coverage": sorted(
            key for key in fuzzer.coverage.sorted_keys() if key not in baseline
        ),
        "new_inputs": [
            [inp.source, list(inp.stdin), inp.family, inp.label]
            for inp in fuzzer.promoted
        ],
        "divergences": [
            fuzzer.divergences[f].to_dict()
            for f in sorted(fuzzer.divergences)
        ],
    }


# -- the campaign driver -----------------------------------------------------

#: Batches submitted per round.  A fixed constant — never derived from
#: the pool size — so the batch partition, the per-batch RNG streams,
#: and therefore the report bytes are identical for any worker count.
BATCHES_PER_ROUND = 4


def _merge_batch(fuzzer: DifferentialFuzzer, result: dict) -> None:
    fuzzer.execs += result["execs"]
    fuzzer.invalid += result["invalid"]
    fuzzer.discarded += result["discarded"]
    fuzzer.saturations += result.get("saturations", 0)
    if fuzzer.metrics is not None:
        fuzzer.metrics.counter("fuzz.execs_total").inc(result["execs"])
        if result.get("saturations"):
            fuzzer.metrics.counter("fuzz.corpus_saturated").inc(
                result["saturations"]
            )
    fuzzer.coverage.observe(result["new_coverage"])
    for source, stdin, family, label in result["new_inputs"]:
        fuzzer.add_corpus(
            FuzzInput(
                source=source, stdin=tuple(stdin), family=family, label=label
            )
        )
    for entry in result["divergences"]:
        div = Divergence.from_dict(entry)
        known = fuzzer.divergences.get(div.fingerprint)
        if known is None:
            fuzzer.divergences[div.fingerprint] = div
            if fuzzer.metrics is not None:
                fuzzer.metrics.counter("fuzz.divergences_total").inc()
        else:
            known.occurrences += div.occurrences


def run_campaign(
    config: FuzzConfig,
    engine=None,
    batch_size: int = 50,
    batch_timeout: float = 120.0,
    store=None,
) -> CampaignReport:
    """Run a whole campaign; with ``engine`` the iterations fan out as
    :class:`FuzzCampaignJob` batches over the service worker pool.
    With ``store`` (a :class:`repro.regress.RegressionStore`) every
    minimized divergence is recorded as a replayable regression bundle."""
    fuzzer = DifferentialFuzzer(
        config,
        metrics=engine.metrics if engine is not None else None,
        store=store,
    )
    fuzzer.run_seeds()
    if engine is None:
        fuzzer.fuzz(batch_rng(config.seed, 0, 0), config.iterations)
        return fuzzer.finalize()

    from ..service.jobs import NORMAL_PRIORITY, FuzzCampaignJob
    from ..service.scheduler import JobFailed

    remaining = config.iterations
    round_index = 0
    while remaining > 0:
        corpus_snapshot = tuple(
            (inp.source, inp.stdin, inp.family, inp.label)
            for inp in fuzzer.corpus
        )
        coverage_snapshot = fuzzer.coverage.sorted_keys()
        handles = []
        for batch_index in range(BATCHES_PER_ROUND):
            if remaining <= 0:
                break
            size = min(batch_size, remaining)
            remaining -= size
            job = FuzzCampaignJob(
                seed=config.seed,
                round=round_index,
                batch=batch_index,
                iterations=size,
                corpus=corpus_snapshot,
                coverage=coverage_snapshot,
                protected=fuzzer._protected,
                step_budget=config.step_budget,
                canary=config.canary,
                max_corpus=config.max_corpus,
            )
            handles.append(
                (
                    size,
                    engine.scheduler.submit(
                        job, priority=NORMAL_PRIORITY, timeout=batch_timeout
                    ),
                )
            )
        for size, handle in handles:
            try:
                _merge_batch(fuzzer, handle.result())
            except JobFailed:
                # The batch's iterations are gone, not silently absorbed:
                # the report carries the shortfall so "N iterations"
                # claims stay honest.
                fuzzer.batches_failed += 1
                fuzzer.iterations_lost += size
                if fuzzer.metrics is not None:
                    fuzzer.metrics.counter("fuzz.iterations_lost").inc(size)
        round_index += 1
    return fuzzer.finalize()

// package: pkg-16-tainted-array
// imports: pkg-13-guarded
char pool[128];
void run() {
  char *buf = new (pool) char[25];
}

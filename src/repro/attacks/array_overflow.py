"""Two-step array overflow — Section 4, Listings 19 and 20.

Step 1: an *object* overflow corrupts the variable holding the buffer
size (``n_unames``) **after** the program's own validation has passed.
Step 2: a perfectly ordinary ``strncpy`` into a pool-carved buffer — safe
under the believed size — copies attacker bytes far past the pool.

The stack variant aims the copied bytes at the return address; the bss
variant tramples the globals behind the pool.  Both demonstrate the
paper's point that "the use of strncpy is perfectly secure when we
ignore the object overflow scenario".
"""

from __future__ import annotations

from ..cxx.types import CHAR, INT
from ..memory.encoding import encode_pointer
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment

UNAME_SIZE = 7  # +1 newline → 8 bytes per username slot


def _benign_unames(count: int) -> str:
    """A well-formed newline-separated username list."""
    return "\n".join(f"user{i:03d}"[:UNAME_SIZE] for i in range(count))


class StackArrayOverflowAttack(AttackScenario):
    """Listing 19: pool on the stack; step 2 rewrites the return slot."""

    name = "two-step-stack-array"
    paper_ref = "§4.1, Listing 19"
    description = "corrupted n_unames lets strncpy run past the stack pool"

    def __init__(self, n_students: int = 8, target_symbol: str = "system") -> None:
        self.n_students = n_students
        self.target_symbol = target_symbol

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        target = machine.text.function_named(self.target_symbol).address
        pool_size = self.n_students * (UNAME_SIZE + 1)

        # Caller frames (main, libc start code) occupy the top of the
        # stack; without them the oversized copy would run off the
        # segment before reaching anything interesting.
        machine.stack.push_region(1024)
        frame = machine.push_frame("sortAndAddUname")
        mem_pool = frame.local_array(CHAR, pool_size, "mem_pool")
        n_unames_addr = frame.local_scalar(INT, "n_unames", init=0)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        # The victim's own check, against the *honest* input.
        machine.stdin.feed(self.n_students)
        n_unames = machine.stdin.read_int()
        if n_unames > self.n_students:
            machine.pop_frame(frame)
            return self.result(env, succeeded=False, machine=machine, reason="validated")
        machine.space.write_int(n_unames_addr, n_unames)

        # Step 1 — object overflow rewrites n_unames after validation.
        gs = env.place(machine, stud, grad_cls)
        inflated = self.n_students * 4
        for index in range(3):
            if gs.element_address("ssn", index) == n_unames_addr:
                gs.set_element("ssn", index, inflated)
                break
        n_unames = machine.space.read_int(n_unames_addr)

        # Step 2 — craft a uname string that reaches the return slot.
        copy_len = n_unames * (UNAME_SIZE + 1)
        ret_offset = frame.slots.return_slot - mem_pool.address
        payload = _benign_unames(self.n_students).ljust(ret_offset, "A")[:ret_offset]
        payload += encode_pointer(target).decode("latin-1")
        buf_addr = env.place_array(
            machine, mem_pool, CHAR, copy_len, arena_size=pool_size
        ).address
        machine.space.strncpy(buf_addr, payload, copy_len)

        exit_ = machine.pop_frame(frame)
        reached = (
            exit_.execution is not None
            and exit_.execution.function_name == self.target_symbol
        )
        return self.result(
            env,
            succeeded=exit_.hijacked and reached,
            machine=machine,
            n_unames_after_step1=n_unames,
            pool_size=pool_size,
            copy_len=copy_len,
            hijacked=exit_.hijacked,
        )


class BssArrayOverflowAttack(AttackScenario):
    """Listing 20: pool in bss; the copy tramples the globals after it."""

    name = "two-step-bss-array"
    paper_ref = "§4.2, Listing 20"
    description = "corrupted n_unames lets strncpy trample globals after the pool"

    def __init__(self, n_students: int = 8) -> None:
        self.n_students = n_students

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        pool_size = self.n_students * (UNAME_SIZE + 1)

        mem_pool = machine.static_array(CHAR, pool_size, "mem_pool")
        machine.static_scalar(INT, "n_staff")
        machine.write_global("n_staff", 25)

        frame = machine.push_frame("sortAndAddUname")
        n_unames_addr = frame.local_scalar(INT, "n_unames", init=0)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        machine.stdin.feed(self.n_students)
        n_unames = machine.stdin.read_int()
        if n_unames > self.n_students:
            machine.pop_frame(frame)
            return self.result(env, succeeded=False, machine=machine, reason="validated")
        machine.space.write_int(n_unames_addr, n_unames)

        # Step 1: rewrite n_unames through the object overflow.
        gs = env.place(machine, stud, grad_cls)
        inflated = self.n_students * 3
        for index in range(3):
            if gs.element_address("ssn", index) == n_unames_addr:
                gs.set_element("ssn", index, inflated)
                break
        n_unames = machine.space.read_int(n_unames_addr)

        # Step 2: the copy runs past the pool into n_staff.
        copy_len = n_unames * (UNAME_SIZE + 1)
        payload = "Z" * copy_len
        buf_addr = env.place_array(
            machine, mem_pool, CHAR, copy_len, arena_size=pool_size
        ).address
        machine.space.strncpy(buf_addr, payload, copy_len)

        staff_after = machine.read_global("n_staff")
        machine.pop_frame(frame)
        return self.result(
            env,
            succeeded=(staff_after != 25),
            machine=machine,
            n_unames_after_step1=n_unames,
            n_staff_after=staff_after,
            pool_size=pool_size,
            copy_len=copy_len,
        )

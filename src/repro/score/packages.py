"""Multi-module MiniC++ packages over a dependency DAG.

A *package* is one MiniC++ module plus the names of the packages it
imports, declared in comment headers at the top of its source::

    // package: svc-auth
    // imports: core-pool, lib-serialize
    <MiniC++ source>

:class:`PackageGraph` validates the declarations into a DAG (unknown
imports and cycles are rejected), and answers the reachability
questions propagation needs: direct dependents, and the transitive
dependent/dependency closures with the minimum import depth of each
member.  :func:`load_package_dir` reads a corpus directory of
``*.cpp`` files (``corpus/packages/`` ships a generated one); the
hand-written :data:`DEMO_PACKAGES` graph is the didactic example whose
blast-radius ranking provably differs from its flat severity ranking.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

#: Header comment keys recognized at the top of a package source file.
_PACKAGE_KEY = "// package:"
_IMPORTS_KEY = "// imports:"


@dataclass(frozen=True)
class Package:
    """One module with its declared imports."""

    name: str
    source: str
    imports: Tuple[str, ...] = ()


def parse_package_source(text: str, default_name: str = "") -> Package:
    """Parse the ``// package:`` / ``// imports:`` header of one file.

    The header must come first (blank lines allowed); the remainder is
    the module source.  A missing ``package`` line falls back to
    ``default_name``; an empty name is an error.
    """
    name = default_name
    imports: Tuple[str, ...] = ()
    body_lines: List[str] = []
    in_header = True
    for line in text.splitlines():
        stripped = line.strip()
        if in_header and stripped.startswith(_PACKAGE_KEY):
            name = stripped[len(_PACKAGE_KEY):].strip()
            continue
        if in_header and stripped.startswith(_IMPORTS_KEY):
            declared = stripped[len(_IMPORTS_KEY):].strip()
            imports = tuple(
                token.strip() for token in declared.split(",") if token.strip()
            )
            continue
        if in_header and not stripped:
            continue
        in_header = False
        body_lines.append(line)
    if not name:
        raise ValueError("package source declares no '// package:' name")
    return Package(name=name, source="\n".join(body_lines) + "\n", imports=imports)


def render_package_source(package: Package) -> str:
    """The on-disk form: header comments followed by the source."""
    lines = [f"{_PACKAGE_KEY} {package.name}"]
    if package.imports:
        lines.append(f"{_IMPORTS_KEY} {', '.join(package.imports)}")
    return "\n".join(lines) + "\n" + package.source


class PackageGraph:
    """A validated DAG of packages keyed by name."""

    def __init__(self, packages: Iterable[Package]) -> None:
        self._packages: Dict[str, Package] = {}
        for package in packages:
            if package.name in self._packages:
                raise ValueError(f"duplicate package name '{package.name}'")
            self._packages[package.name] = package
        for package in self._packages.values():
            for dep in package.imports:
                if dep not in self._packages:
                    raise ValueError(
                        f"package '{package.name}' imports unknown "
                        f"package '{dep}'"
                    )
                if dep == package.name:
                    raise ValueError(
                        f"package '{package.name}' imports itself"
                    )
        self._dependents: Dict[str, List[str]] = {
            name: [] for name in self._packages
        }
        for package in self._packages.values():
            for dep in package.imports:
                self._dependents[dep].append(package.name)
        for name in self._dependents:
            self._dependents[name].sort()
        self._assert_acyclic()

    def _assert_acyclic(self) -> None:
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str, trail: Tuple[str, ...]) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(trail[trail.index(name):] + (name,))
                raise ValueError(f"package import cycle: {cycle}")
            state[name] = 0
            for dep in self._packages[name].imports:
                visit(dep, trail + (name,))
            state[name] = 1

        for name in sorted(self._packages):
            visit(name, ())

    # -- access --------------------------------------------------------------

    def names(self) -> List[str]:
        """Package names, sorted (the deterministic iteration order)."""
        return sorted(self._packages)

    def package(self, name: str) -> Package:
        return self._packages[name]

    def __len__(self) -> int:
        return len(self._packages)

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    # -- reachability --------------------------------------------------------

    def dependents_of(self, name: str) -> List[str]:
        """Packages that directly import ``name``, sorted."""
        return list(self._dependents[name])

    def _closure(self, name: str, edges) -> Dict[str, int]:
        """BFS minimum-depth closure over ``edges(name) -> neighbors``."""
        depths: Dict[str, int] = {}
        queue = deque([(name, 0)])
        while queue:
            current, depth = queue.popleft()
            for neighbor in edges(current):
                if neighbor not in depths:
                    depths[neighbor] = depth + 1
                    queue.append((neighbor, depth + 1))
        return depths

    def transitive_dependents(self, name: str) -> Dict[str, int]:
        """Every package that (transitively) embeds ``name``, with the
        minimum import-chain depth — the blast set of a flawed module."""
        return self._closure(name, lambda n: self._dependents[n])

    def transitive_dependencies(self, name: str) -> Dict[str, int]:
        """Every package ``name`` (transitively) embeds, with depth —
        the exposure set a dependent inherits risk from."""
        return self._closure(name, lambda n: self._packages[n].imports)

    def topological(self) -> List[str]:
        """Dependencies-first order (ties broken alphabetically)."""
        order: List[str] = []
        done: set = set()

        def visit(name: str) -> None:
            if name in done:
                return
            done.add(name)
            for dep in sorted(self._packages[name].imports):
                visit(dep)
            order.append(name)

        for name in sorted(self._packages):
            visit(name)
        return order


def load_package_dir(directory) -> PackageGraph:
    """Read every ``*.cpp`` in ``directory`` into a validated graph."""
    path = Path(directory)
    if not path.is_dir():
        raise FileNotFoundError(f"no package directory at {path}")
    packages = []
    for file in sorted(path.glob("*.cpp")):
        packages.append(parse_package_source(file.read_text(), file.stem))
    if not packages:
        raise ValueError(f"no *.cpp packages in {path}")
    return PackageGraph(packages)


def generated_package_graph(seed: int, count: int) -> PackageGraph:
    """A reproducible many-package graph from the workloads generator."""
    from ..workloads.generators import generate_package_corpus

    return PackageGraph(
        Package(name=name, source=source, imports=tuple(imports))
        for name, imports, source in generate_package_corpus(seed, count)
    )


# -- the didactic demo graph -------------------------------------------------

_DEMO_CLASSES = """class Student {
  public:
    Student();
    double gpa;
    int year, semester;
};
class GradStudent : public Student {
  public:
    GradStudent();
    int ssn[3];
};
"""

#: A shared low-level pool module with *warning-grade* flaws only
#: (arena-reuse leak + shrinking-placement memory leak), embedded by
#: most of the graph.
_CORE_POOL = _DEMO_CLASSES + """char pool[64];
void fill_pool() {
  readFile("/etc/passwd", pool, 64);
  char *userdata = new (pool) char[64];
  store(userdata);
}
void churn() {
  GradStudent *g = new GradStudent();
  Student *st = new (g) Student();
  g = NULL;
}
"""

#: A standalone tool with an *error-grade* overflow but zero dependents.
_TOOL_REPORT = _DEMO_CLASSES + """Student stud;
void render() {
  GradStudent *st = new (&stud) GradStudent();
  st->ssn[0] = 7;
}
"""

_CLEAN_MODULE = """void handle(int request) {
  int budget = 8;
  int i = 0;
  while (i < budget) {
    i = i + 1;
  }
}
"""

#: Hand-written example: ``core-pool`` carries only warning-grade risk
#: (intrinsic 5) but five transitive dependents; ``tool-report`` is a
#: leaf with a proved overflow (intrinsic 12).  Flat severity ranks
#: ``tool-report`` first; blast-radius propagation ranks ``core-pool``
#: first — the whole point of the propagation layer.
DEMO_PACKAGES: Tuple[Package, ...] = (
    Package(name="core-pool", source=_CORE_POOL),
    Package(name="lib-serialize", source=_CLEAN_MODULE, imports=("core-pool",)),
    Package(name="svc-auth", source=_CLEAN_MODULE, imports=("core-pool",)),
    Package(name="svc-cache", source=_CLEAN_MODULE, imports=("core-pool",)),
    Package(name="app-batch", source=_CLEAN_MODULE, imports=("lib-serialize",)),
    Package(
        name="app-gateway",
        source=_CLEAN_MODULE,
        imports=("svc-auth", "svc-cache"),
    ),
    Package(name="tool-report", source=_TOOL_REPORT),
)


def demo_graph() -> PackageGraph:
    """The :data:`DEMO_PACKAGES` graph, validated."""
    return PackageGraph(DEMO_PACKAGES)

#!/usr/bin/env python
"""Every attack against every defense — the paper's Section 5 in one table.

Runs the full attack gallery (26 scenarios from Sections 3–4) against the
six hardening configurations and prints the matrix, followed by the
Section 5.2 StackGuard experiment in detail.

Run:  python examples/defense_shootout.py
"""

from repro.attacks import STACKGUARD, CanarySkipExperiment, all_attacks
from repro.defenses import ALL_DEFENSES, evaluate_matrix


def main() -> None:
    print("running", len(all_attacks()), "attacks x", len(ALL_DEFENSES), "defenses...")
    matrix = evaluate_matrix(all_attacks(), ALL_DEFENSES)
    print()
    print(matrix.render(column_width=24))
    print()

    print("— the §5.2 StackGuard experiment, in detail —")
    experiment = CanarySkipExperiment().run(STACKGUARD)
    print(" naive smash:        ", experiment.detail["naive"])
    print(" selective overwrite:", experiment.detail["selective"])
    print(
        " canary intact after selective overwrite:",
        experiment.detail["selective_canary_intact"],
    )
    print()
    print(
        "reading the table: StackGuard stops only the naive strncpy smash;\n"
        "every placement-new object overflow walks straight past it.  The\n"
        "§5.1 checked placement stops all overflow-driven attacks but not\n"
        "the information leaks (sanitize-on-reuse's job) or the Listing 23\n"
        "leak (placement delete / arena-owner protocol's job)."
    )


if __name__ == "__main__":
    main()

"""Tokenizer for MiniC++ source."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from ..errors import ParseError

KEYWORDS = {
    "class", "public", "private", "protected", "virtual", "new", "delete",
    "if", "else", "while", "for", "return", "true", "false", "NULL",
    "nullptr", "sizeof", "cin", "cout", "endl", "struct", "const",
}

#: Multi-character operators, longest first so maximal munch works.
MULTI_OPS = (
    "<<=", ">>=", "->", "::", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "++", "--", "+=", "-=", "*=", "/=",
)
SINGLE_OPS = "+-*/%<>=!&|~^.,;:()[]{}?"


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    FLOAT = "float"
    STRING = "string"
    CHARLIT = "charlit"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        return self.kind is TokenKind.OP and self.text in ops

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in words


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with an EOF token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        # whitespace
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated block comment", line, column)
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        # preprocessor lines are skipped wholesale
        if ch == "#" and column == 1:
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_column = column
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            yield Token(kind, text, line, start_column)
            column += j - i
            i = j
            continue
        # numbers
        if ch.isdigit():
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and (source[j].isdigit() or source[j] == "."):
                    if source[j] == ".":
                        if is_float:
                            break
                        is_float = True
                    j += 1
            text = source[i:j]
            yield Token(
                TokenKind.FLOAT if is_float else TokenKind.NUMBER,
                text,
                line,
                start_column,
            )
            column += j - i
            i = j
            continue
        # string literals
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal", line, column)
            yield Token(TokenKind.STRING, source[i + 1 : j], line, start_column)
            column += j + 1 - i
            i = j + 1
            continue
        # char literals
        if ch == "'":
            j = i + 1
            while j < n and source[j] != "'":
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise ParseError("unterminated char literal", line, column)
            yield Token(TokenKind.CHARLIT, source[i + 1 : j], line, start_column)
            column += j + 1 - i
            i = j + 1
            continue
        # operators
        matched = None
        for op in MULTI_OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is None and ch in SINGLE_OPS:
            matched = ch
        if matched is None:
            raise ParseError(f"unexpected character {ch!r}", line, column)
        yield Token(TokenKind.OP, matched, line, start_column)
        column += len(matched)
        i += len(matched)
    yield Token(TokenKind.EOF, "", line, column)

// package: pkg-05-direct
// imports: pkg-00-leak, pkg-01-leak, pkg-03-direct
class Small { public: char f0; short f1; double f2; };
class Big : public Small { public: int g0; char g1; char g2; };
void run() {
  Big arena;
  Small *p = new (&arena) Small();
}

"""E9 — the two-step array overflow (§4, Listings 19–20).

Claims: step 1 (object overflow) rewrites ``n_unames`` *after* the
program's own validation; step 2's perfectly ordinary ``strncpy`` then
runs past the pool — to the return address on the stack, or over
neighbouring globals in bss.
"""

from repro.attacks import (
    UNPROTECTED,
    BssArrayOverflowAttack,
    StackArrayOverflowAttack,
)

from conftest import print_table


def run_experiment():
    stack = StackArrayOverflowAttack(n_students=8).run(UNPROTECTED)
    bss = BssArrayOverflowAttack(n_students=8).run(UNPROTECTED)
    print_table(
        "E9: two-step array overflow (Listings 19-20)",
        ["variant", "pool", "n_unames after step1", "copy len", "result"],
        [
            (
                "stack",
                stack.detail["pool_size"],
                stack.detail["n_unames_after_step1"],
                stack.detail["copy_len"],
                "return hijacked" if stack.detail["hijacked"] else "no hijack",
            ),
            (
                "bss",
                bss.detail["pool_size"],
                bss.detail["n_unames_after_step1"],
                bss.detail["copy_len"],
                f"n_staff -> {bss.detail['n_staff_after']}",
            ),
        ],
    )
    return stack, bss


def test_e9_shape(benchmark):
    stack, bss = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Step 1 inflated the count past the validated bound.
    assert stack.detail["n_unames_after_step1"] > 8
    # Step 2 copies more than the pool holds.
    assert stack.detail["copy_len"] > stack.detail["pool_size"]
    assert stack.succeeded and stack.detail["hijacked"]
    assert bss.succeeded and bss.detail["n_staff_after"] != 25

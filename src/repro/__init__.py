"""repro — a byte-accurate reproduction of "A New Class of Buffer
Overflow Attacks" (Kundu & Bertino, ICDCS 2011).

The library simulates a 32-bit process image in pure Python and
reproduces every placement-new attack, defense, and analysis result from
the paper.  Start with::

    from repro import Machine, placement_new
    from repro.workloads import make_student_classes

    machine = Machine()
    student_cls, grad_cls = make_student_classes()
    stud = machine.static_object(student_cls, "stud")
    gs = placement_new(machine, stud, grad_cls)   # the vulnerability

See README.md for the full tour and DESIGN.md for the architecture.
"""

from .core import (
    checked_placement_new,
    checked_placement_new_array,
    delete_array,
    delete_object,
    new_array,
    new_object,
    placement_delete,
    placement_new,
    placement_new_array,
    placement_new_in_pool,
)
from .errors import (
    BoundsCheckViolation,
    OutOfMemory,
    ReproError,
    SegmentationFault,
    SimulatedProcessError,
    StackSmashingDetected,
)
from .runtime import CanaryPolicy, Machine, MachineConfig

__version__ = "1.0.0"

__all__ = [
    "BoundsCheckViolation",
    "CanaryPolicy",
    "Machine",
    "MachineConfig",
    "OutOfMemory",
    "ReproError",
    "SegmentationFault",
    "SimulatedProcessError",
    "StackSmashingDetected",
    "__version__",
    "checked_placement_new",
    "checked_placement_new_array",
    "delete_array",
    "delete_object",
    "new_array",
    "new_object",
    "placement_delete",
    "placement_new",
    "placement_new_array",
    "placement_new_in_pool",
]
